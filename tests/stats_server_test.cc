// Tests for the embedded HTTP stats server: the routing table through
// HandleRequest (no sockets), the wire itself through HttpGet against
// a live listener (exporter parity with the in-process JSON export,
// /healthz flipping 200 -> 503 on a chaos-forced degrade without a
// server restart), and the query-log schema across every src/workload/
// scenario.

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <vector>

#include "net/stats_server.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/query_log.h"
#include "query/database.h"
#include "store/file_ops.h"
#include "workload/company.h"
#include "workload/kinship.h"
#include "workload/people.h"

namespace pathlog {
namespace {

// ---------------------------------------------------------------------------
// Routing, socket-free: HandleRequest is the whole table.

TEST(StatsServerTest, HandleRequestRoutesEveryEndpoint) {
  MetricsRegistry metrics;
  metrics.GetCounter("pathlog_test_total")->Inc(3);
  Profiler profiler;
  FlightRecorder flight(8);
  flight.Record("test.span", "test", 5);
  QueryLog query_log{QueryLogOptions{}};  // in-memory only

  StatsServerOptions opts;
  opts.metrics = &metrics;
  opts.profiler = &profiler;
  opts.flight = &flight;
  opts.query_log = &query_log;
  StatsServer server(opts);  // never started: handlers need no socket

  HttpResponse metrics_rsp = server.HandleRequest("/metrics");
  EXPECT_EQ(metrics_rsp.status, 200);
  EXPECT_NE(metrics_rsp.body.find("pathlog_test_total 3"), std::string::npos);

  HttpResponse varz = server.HandleRequest("/varz");
  EXPECT_EQ(varz.status, 200);
  Result<JsonValue> varz_json = ParseJson(varz.body);
  ASSERT_TRUE(varz_json.ok()) << varz_json.status();
  ASSERT_NE(varz_json->Find("counters"), nullptr);

  // No health callback and no degraded gauge registered: healthy.
  HttpResponse healthz = server.HandleRequest("/healthz");
  EXPECT_EQ(healthz.status, 200);
  EXPECT_EQ(healthz.body, "ok\n");

  HttpResponse statusz = server.HandleRequest("/statusz");
  EXPECT_EQ(statusz.status, 200);
  EXPECT_NE(statusz.body.find("uptime"), std::string::npos);
  EXPECT_NE(statusz.body.find("build"), std::string::npos);

  HttpResponse tracez = server.HandleRequest("/tracez");
  EXPECT_EQ(tracez.status, 200);
  Result<JsonValue> trace = ParseJson(tracez.body);
  ASSERT_TRUE(trace.ok()) << trace.status();
  const JsonValue* events = trace->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items().size(), 1u);
  EXPECT_EQ(events->items()[0].Find("name")->as_string(), "test.span");

  HttpResponse querylogz = server.HandleRequest("/querylogz");
  EXPECT_EQ(querylogz.status, 200);
  Result<JsonValue> ql = ParseJson(querylogz.body);
  ASSERT_TRUE(ql.ok()) << ql.status();
  ASSERT_NE(ql->Find("records"), nullptr);

  EXPECT_EQ(server.HandleRequest("/").status, 200);
  EXPECT_EQ(server.HandleRequest("/nope").status, 404);
}

TEST(StatsServerTest, HandleRequestDegradesGracefullyWithNoSinks) {
  StatsServer server(StatsServerOptions{});
  for (const char* path :
       {"/metrics", "/varz", "/healthz", "/statusz", "/tracez",
        "/querylogz", "/"}) {
    HttpResponse rsp = server.HandleRequest(path);
    EXPECT_EQ(rsp.status, 200) << path;
  }
}

// ---------------------------------------------------------------------------
// The wire. A real listener on an ephemeral port, scraped via HttpGet.

TEST(StatsServerTest, ServesOverARealSocket) {
  MetricsRegistry metrics;
  metrics.GetCounter("pathlog_wire_total")->Inc(7);
  StatsServerOptions opts;
  opts.metrics = &metrics;
  StatsServer server(opts);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);
  EXPECT_TRUE(server.running());

  Result<HttpResponse> rsp = HttpGet(server.port(), "/metrics");
  ASSERT_TRUE(rsp.ok()) << rsp.status();
  EXPECT_EQ(rsp->status, 200);
  EXPECT_NE(rsp->body.find("pathlog_wire_total 7"), std::string::npos);
  EXPECT_GE(server.requests_served(), 1u);

  Result<HttpResponse> missing = HttpGet(server.port(), "/nope");
  ASSERT_TRUE(missing.ok()) << missing.status();
  EXPECT_EQ(missing->status, 404);

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

// The acceptance criterion verbatim: /metrics scraped over the socket
// parses via ParseMetricsPrometheusText and is sample-for-sample equal
// to the in-process ToJson() export, on a registry a real database
// populated.
TEST(StatsServerTest, WireMetricsParityWithInProcessJsonExport) {
  MetricsRegistry metrics;
  Database db;
  ObsSinks sinks;
  sinks.metrics = &metrics;
  db.SetObsSinks(sinks);
  ASSERT_TRUE(db.Load("X[desc->>{Y}] <- X[kids->>{Y}]. "
                      "X[desc->>{Z}] <- X[kids->>{Y}], Y[desc->>{Z}].")
                  .ok());
  ASSERT_TRUE(db.Load("a[kids->>{b}]. b[kids->>{c}].").ok());
  Result<ResultSet> rs = db.Query("?- a[desc->>{D}].");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->size(), 2u);

  StatsServerOptions opts;
  opts.metrics = &metrics;
  StatsServer server(opts);
  ASSERT_TRUE(server.Start().ok());

  Result<HttpResponse> scraped = HttpGet(server.port(), "/metrics");
  ASSERT_TRUE(scraped.ok()) << scraped.status();
  ASSERT_EQ(scraped->status, 200);
  EXPECT_NE(scraped->content_type.find("text/plain"), std::string::npos);

  Result<MetricsSamples> wire = ParseMetricsPrometheusText(scraped->body);
  ASSERT_TRUE(wire.ok()) << wire.status();
  Result<MetricsSamples> in_process = ParseMetricsJson(metrics.ToJson());
  ASSERT_TRUE(in_process.ok()) << in_process.status();
  ASSERT_FALSE(wire->empty());
  EXPECT_EQ(*wire, *in_process);

  // /varz must be the very same export the parity held against.
  Result<HttpResponse> varz = HttpGet(server.port(), "/varz");
  ASSERT_TRUE(varz.ok()) << varz.status();
  Result<MetricsSamples> varz_samples = ParseMetricsJson(varz->body);
  ASSERT_TRUE(varz_samples.ok()) << varz_samples.status();
  EXPECT_EQ(*varz_samples, *wire);
}

// /healthz must flip 200 -> 503 when a chaos schedule forces degraded
// mode, and heal back to 200 after a successful checkpoint — all
// against the same server instance, never restarted.
TEST(StatsServerTest, HealthzFlipsOnDegradeWithoutServerRestart) {
  using FaultKind = FaultInjectingFileOps::FaultKind;
  using FaultOp = FaultInjectingFileOps::FaultOp;

  FaultInjectingFileOps fs;
  DatabaseOptions db_opts;
  Result<Database> db = Database::Open("/db", db_opts, &fs);
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE(db->Load("a[v->1].").ok());

  // The health callback runs on the server thread; the test mutates the
  // database only between (blocking) scrapes, but the mutex keeps the
  // discipline the shell uses.
  std::mutex mu;
  StatsServerOptions opts;
  opts.health = [&]() {
    std::lock_guard<std::mutex> lock(mu);
    DatabaseHealth h = db->Health();
    ServingHealth sh;
    sh.ok = !h.degraded;
    sh.detail = h.degraded_cause;
    return sh;
  };
  StatsServer server(opts);
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  Result<HttpResponse> healthy = HttpGet(port, "/healthz");
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  EXPECT_EQ(healthy->status, 200);
  EXPECT_EQ(healthy->body, "ok\n");

  // Persistent WAL fault: the device is gone, the next commit degrades.
  {
    std::lock_guard<std::mutex> lock(mu);
    FaultInjectingFileOps::FaultSchedule sched;
    sched.events.push_back(FaultInjectingFileOps::FaultEvent{
        FaultOp::kAppend, 1, 1, FaultKind::kFail, StatusCode::kInternal});
    fs.SetSchedule(sched);
    EXPECT_EQ(db->Load("b[v->2].").code(), StatusCode::kUnavailable);
    EXPECT_TRUE(db->degraded());
  }

  Result<HttpResponse> sick = HttpGet(port, "/healthz");
  ASSERT_TRUE(sick.ok()) << sick.status();
  EXPECT_EQ(sick->status, 503);
  EXPECT_NE(sick->body.find("unhealthy"), std::string::npos);

  // Space returns; the checkpoint probe heals the database, and the
  // same listener reports healthy again.
  {
    std::lock_guard<std::mutex> lock(mu);
    fs.SetSchedule(FaultInjectingFileOps::FaultSchedule{});
    ASSERT_TRUE(db->Checkpoint().ok());
    EXPECT_FALSE(db->degraded());
  }
  Result<HttpResponse> healed = HttpGet(port, "/healthz");
  ASSERT_TRUE(healed.ok()) << healed.status();
  EXPECT_EQ(healed->status, 200);
  EXPECT_EQ(server.port(), port) << "the listener must never restart";
  EXPECT_GE(server.requests_served(), 3u);
}

// Falling back to the degraded gauge when no health callback is set.
TEST(StatsServerTest, HealthzFallsBackToDegradedGauge) {
  MetricsRegistry metrics;
  StatsServerOptions opts;
  opts.metrics = &metrics;
  StatsServer server(opts);

  EXPECT_EQ(server.HandleRequest("/healthz").status, 200);
  metrics.GetGauge("pathlog_db_degraded")->Set(1);
  EXPECT_EQ(server.HandleRequest("/healthz").status, 503);
  metrics.GetGauge("pathlog_db_degraded")->Set(0);
  EXPECT_EQ(server.HandleRequest("/healthz").status, 200);
}

// ---------------------------------------------------------------------------
// Query-log schema across every src/workload/ scenario.

/// Asserts one serialised query-log line matches the documented
/// schema: required keys, right JSON types, kind in the closed set.
void ExpectValidQueryLogRecord(const std::string& line) {
  Result<JsonValue> v = ParseJson(line);
  ASSERT_TRUE(v.ok()) << v.status() << "\nline: " << line;
  ASSERT_TRUE(v->is_object());
  for (const char* key : {"ts_ms", "latency_ms", "rows"}) {
    const JsonValue* f = v->Find(key);
    ASSERT_NE(f, nullptr) << key << "\nline: " << line;
    EXPECT_TRUE(f->is_number()) << key;
  }
  for (const char* key : {"kind", "query", "status", "strategy",
                          "plan_fingerprint"}) {
    const JsonValue* f = v->Find(key);
    ASSERT_NE(f, nullptr) << key << "\nline: " << line;
    EXPECT_TRUE(f->is_string()) << key;
  }
  const std::string& kind = v->Find("kind")->as_string();
  EXPECT_TRUE(kind == "query" || kind == "eval" || kind == "holds") << kind;
  const JsonValue* slow = v->Find("slow");
  ASSERT_NE(slow, nullptr);
  EXPECT_TRUE(slow->is_bool());

  const JsonValue* budget = v->Find("budget");
  ASSERT_NE(budget, nullptr) << line;
  ASSERT_TRUE(budget->is_object());
  for (const char* key : {"derivations", "store_bytes", "wall_ms"}) {
    const JsonValue* f = budget->Find(key);
    ASSERT_NE(f, nullptr) << key;
    EXPECT_TRUE(f->is_number()) << key;
  }
  ASSERT_NE(budget->Find("rejected"), nullptr);
  EXPECT_TRUE(budget->Find("rejected")->is_bool());

  const JsonValue* routes = v->Find("routes");
  ASSERT_NE(routes, nullptr) << line;
  ASSERT_TRUE(routes->is_object());
  for (const char* key : {"inverted_probes", "extent_scans",
                          "universe_scans", "duplicates_suppressed"}) {
    const JsonValue* f = routes->Find(key);
    ASSERT_NE(f, nullptr) << key;
    EXPECT_TRUE(f->is_number()) << key;
  }
}

TEST(QueryLogSchemaTest, CompanyWorkload) {
  QueryLog log{QueryLogOptions{}};
  DatabaseOptions opts;
  opts.query_log = &log;
  Database db(opts);
  CompanyConfig cfg;
  cfg.num_employees = 50;
  GenerateCompany(&db.store(), cfg);

  Result<ResultSet> rs = db.Query("?- X:employee[age->A].");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_GT(rs->size(), 0u);
  ASSERT_TRUE(db.Eval("emp0.age").ok());
  ASSERT_TRUE(db.Holds("emp0 : employee").ok());

  std::vector<std::string> recent = log.Recent();
  ASSERT_EQ(recent.size(), 3u);
  for (const std::string& line : recent) ExpectValidQueryLogRecord(line);

  // Kinds land in order, and the query record carries a plan
  // fingerprint (eval/holds have no conjunctive plan, so theirs is "").
  Result<JsonValue> first = ParseJson(recent[0]);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->Find("kind")->as_string(), "query");
  EXPECT_EQ(first->Find("plan_fingerprint")->as_string().size(), 8u);
  EXPECT_GT(first->Find("rows")->as_number(), 0.0);
}

TEST(QueryLogSchemaTest, PeopleWorkload) {
  QueryLog log{QueryLogOptions{}};
  DatabaseOptions opts;
  opts.query_log = &log;
  Database db(opts);
  PeopleConfig cfg;
  cfg.num_persons = 40;
  GeneratePeople(&db.store(), cfg);

  ASSERT_TRUE(db.Query("?- X:person[city->C].").ok());
  ASSERT_TRUE(db.Eval("person0.city").ok());
  ASSERT_TRUE(db.Holds("person0 : person").ok());
  // A failing operation must still produce a schema-valid record with
  // its error code as the status.
  EXPECT_FALSE(db.Eval("person0..").ok());

  std::vector<std::string> recent = log.Recent();
  ASSERT_EQ(recent.size(), 4u);
  for (const std::string& line : recent) ExpectValidQueryLogRecord(line);
  Result<JsonValue> last = ParseJson(recent.back());
  ASSERT_TRUE(last.ok());
  EXPECT_NE(last->Find("status")->as_string(), "ok");
}

TEST(QueryLogSchemaTest, KinshipWorkloads) {
  QueryLog log{QueryLogOptions{}};
  DatabaseOptions opts;
  opts.query_log = &log;
  Database db(opts);
  GenerateChain(&db.store(), 12);
  GenerateTree(&db.store(), 15, 2);
  GenerateRandomDag(&db.store(), 30, 2.0, 11);
  ASSERT_TRUE(db.Load("X[desc->>{Y}] <- X[kids->>{Y}]. "
                      "X[desc->>{Z}] <- X[kids->>{Y}], Y[desc->>{Z}].")
                  .ok());

  ASSERT_TRUE(db.Query("?- p0[desc->>{D}].").ok());
  ASSERT_TRUE(db.Query("?- t0[desc->>{D}].").ok());
  ASSERT_TRUE(db.Eval("d0..kids").ok());
  ASSERT_TRUE(db.Holds("p0[desc->>{p1}]").ok());

  std::vector<std::string> recent = log.Recent();
  ASSERT_EQ(recent.size(), 4u);
  for (const std::string& line : recent) ExpectValidQueryLogRecord(line);
}

// The query log reaches /querylogz through a live server: the endpoint
// serves the same serialised records Recent() returns.
TEST(QueryLogSchemaTest, QuerylogzServesTheRecentRing) {
  QueryLog log{QueryLogOptions{}};
  DatabaseOptions opts;
  opts.query_log = &log;
  Database db(opts);
  ASSERT_TRUE(db.Load("a[v->1].").ok());
  ASSERT_TRUE(db.Query("?- a[v->V].").ok());

  StatsServerOptions server_opts;
  server_opts.query_log = &log;
  StatsServer server(server_opts);
  ASSERT_TRUE(server.Start().ok());
  Result<HttpResponse> rsp = HttpGet(server.port(), "/querylogz");
  ASSERT_TRUE(rsp.ok()) << rsp.status();
  Result<JsonValue> v = ParseJson(rsp->body);
  ASSERT_TRUE(v.ok()) << v.status();
  const JsonValue* records = v->Find("records");
  ASSERT_NE(records, nullptr);
  ASSERT_EQ(records->items().size(), 1u);
  EXPECT_EQ(records->items()[0].Find("kind")->as_string(), "query");
}

}  // namespace
}  // namespace pathlog
