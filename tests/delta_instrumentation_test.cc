// Unit tests for the generation plumbing that powers literal-level
// semi-naive and triggers: store generation stamps, and the
// evaluator's delta-restricted mode.

#include <gtest/gtest.h>

#include "eval/ref_eval.h"
#include "parser/parser.h"
#include "semantics/structure.h"
#include "store/object_store.h"

namespace pathlog {
namespace {

TEST(StoreGenStampsTest, ScalarEntriesCarryGenerations) {
  ObjectStore s;
  Oid m = s.InternSymbol("m");
  Oid a = s.InternSymbol("a");
  Oid b = s.InternSymbol("b");
  ASSERT_TRUE(s.SetScalar(m, a, {}, b).ok());  // gen 0
  ASSERT_TRUE(s.SetScalar(m, b, {}, a).ok());  // gen 1
  EXPECT_EQ(s.ScalarEntries(m)[0].gen, 0u);
  EXPECT_EQ(s.ScalarEntries(m)[1].gen, 1u);
}

TEST(StoreGenStampsTest, SetMembersCarryGenerations) {
  ObjectStore s;
  Oid m = s.InternSymbol("m");
  Oid a = s.InternSymbol("a");
  Oid b = s.InternSymbol("b");
  Oid c = s.InternSymbol("c");
  s.AddSetMember(m, a, {}, b);  // gen 0
  s.AddSetMember(m, a, {}, c);  // gen 1
  const SetGroup* g = s.GetSetGroup(m, a, {});
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->member_gens, (std::vector<uint64_t>{0, 1}));
  EXPECT_EQ(g->MemberGen(b), 0u);
  EXPECT_EQ(g->MemberGen(c), 1u);
  EXPECT_EQ(g->MemberGen(a), UINT64_MAX);
}

TEST(StoreGenStampsTest, IsaClosurePairsCarryEstablishingGeneration) {
  ObjectStore s;
  Oid x = s.InternSymbol("x");
  Oid mid = s.InternSymbol("mid");
  Oid top = s.InternSymbol("top");
  ASSERT_TRUE(s.AddIsa(x, mid).ok());    // gen 0
  ASSERT_TRUE(s.AddIsa(mid, top).ok());  // gen 1 — also establishes x<=top
  EXPECT_EQ(s.IsaGen(x, mid), 0u);
  EXPECT_EQ(s.IsaGen(mid, top), 1u);
  EXPECT_EQ(s.IsaGen(x, top), 1u);  // the closure pair came with edge 1
  EXPECT_EQ(s.IsaGen(top, x), UINT64_MAX);
  // Parallel gen vectors line up with the extent/ancestor vectors.
  ASSERT_EQ(s.Members(top).size(), s.MemberGens(top).size());
  ASSERT_EQ(s.Ancestors(x).size(), s.AncestorGens(x).size());
}

class DeltaModeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    s_.InternSymbol(kSelfMethodName);
    Oid kids = s_.InternSymbol("kids");
    Oid p0 = s_.InternSymbol("p0");
    Oid p1 = s_.InternSymbol("p1");
    Oid p2 = s_.InternSymbol("p2");
    s_.AddSetMember(kids, p0, {}, p1);  // gen 0 (old)
    cut_ = s_.generation();
    s_.AddSetMember(kids, p0, {}, p2);  // gen 1 (new)
  }

  /// Solutions of `src` that consumed at least one fact >= cut.
  std::set<std::string> DeltaSolutions(std::string_view src) {
    Result<RefPtr> r = ParseRef(src);
    EXPECT_TRUE(r.ok()) << r.status();
    SemanticStructure I(s_);
    RefEvaluator eval(I);
    Bindings b;
    std::set<std::string> out;
    eval.EnterDelta(cut_);
    Result<bool> res = eval.Enumerate(**r, &b, [&](Oid o) -> Result<bool> {
      if (eval.DeltaSeen()) out.insert(s_.DisplayName(o));
      return true;
    });
    eval.ExitDelta();
    EXPECT_TRUE(res.ok()) << res.status();
    return out;
  }

  ObjectStore s_;
  uint64_t cut_ = 0;
};

TEST_F(DeltaModeTest, OnlyNewMembersCountAsDelta) {
  EXPECT_EQ(DeltaSolutions("p0..kids"), (std::set<std::string>{"p2"}));
}

TEST_F(DeltaModeTest, OldFactsDoNotTrip) {
  // Restricting to the old member by pattern: no delta solution.
  EXPECT_EQ(DeltaSolutions("p0[kids->>{p1}]"), (std::set<std::string>{}));
  // The new member's membership fact is delta.
  EXPECT_EQ(DeltaSolutions("p0[kids->>{p2}]"),
            (std::set<std::string>{"p0"}));
}

TEST_F(DeltaModeTest, SuspendStopsCounting) {
  Result<RefPtr> r = ParseRef("p0..kids");
  ASSERT_TRUE(r.ok());
  SemanticStructure I(s_);
  RefEvaluator eval(I);
  Bindings b;
  int seen_while_suspended = 0;
  eval.EnterDelta(cut_);
  bool saved = eval.SuspendDelta();
  Result<bool> res = eval.Enumerate(**r, &b, [&](Oid) -> Result<bool> {
    seen_while_suspended += eval.DeltaSeen() ? 1 : 0;
    return true;
  });
  eval.ResumeDelta(saved);
  eval.ExitDelta();
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(seen_while_suspended, 0);
}

TEST_F(DeltaModeTest, DeltaInactiveByDefault) {
  Result<RefPtr> r = ParseRef("p0..kids");
  ASSERT_TRUE(r.ok());
  SemanticStructure I(s_);
  RefEvaluator eval(I);
  Bindings b;
  int count = 0;
  Result<bool> res = eval.Enumerate(**r, &b, [&](Oid) -> Result<bool> {
    ++count;
    EXPECT_FALSE(eval.DeltaSeen());
    return true;
  });
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(count, 2);
}

TEST_F(DeltaModeTest, IsaDeltaDetected) {
  Oid p3 = s_.InternSymbol("p3");
  Oid thing = s_.InternSymbol("thing");
  ASSERT_TRUE(s_.AddIsa(p3, thing).ok());  // after cut
  EXPECT_EQ(DeltaSolutions("X:thing"), (std::set<std::string>{"p3"}));
}

}  // namespace
}  // namespace pathlog
