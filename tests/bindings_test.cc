// The backtracking bindings trail.

#include "eval/bindings.h"

#include <gtest/gtest.h>

namespace pathlog {
namespace {

TEST(BindingsTest, BindAndGet) {
  Bindings b;
  EXPECT_FALSE(b.IsBound("X"));
  EXPECT_EQ(b.Get("X"), std::nullopt);
  b.Bind("X", 7);
  EXPECT_TRUE(b.IsBound("X"));
  EXPECT_EQ(b.Get("X"), 7u);
  EXPECT_EQ(b.size(), 1u);
}

TEST(BindingsTest, MarkUndoRollsBackExactly) {
  Bindings b;
  b.Bind("X", 1);
  size_t mark = b.Mark();
  b.Bind("Y", 2);
  b.Bind("Z", 3);
  EXPECT_EQ(b.size(), 3u);
  b.Undo(mark);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_TRUE(b.IsBound("X"));
  EXPECT_FALSE(b.IsBound("Y"));
  EXPECT_FALSE(b.IsBound("Z"));
}

TEST(BindingsTest, NestedMarks) {
  Bindings b;
  size_t m0 = b.Mark();
  b.Bind("A", 1);
  size_t m1 = b.Mark();
  b.Bind("B", 2);
  size_t m2 = b.Mark();
  b.Bind("C", 3);
  b.Undo(m2);
  EXPECT_TRUE(b.IsBound("B"));
  EXPECT_FALSE(b.IsBound("C"));
  b.Undo(m1);
  EXPECT_TRUE(b.IsBound("A"));
  EXPECT_FALSE(b.IsBound("B"));
  b.Undo(m0);
  EXPECT_EQ(b.size(), 0u);
}

TEST(BindingsTest, UndoToCurrentMarkIsNoop) {
  Bindings b;
  b.Bind("X", 1);
  b.Undo(b.Mark());
  EXPECT_TRUE(b.IsBound("X"));
}

TEST(BindingsTest, ToValuationSnapshots) {
  Bindings b;
  b.Bind("X", 1);
  b.Bind("Y", 2);
  VarValuation v = b.ToValuation();
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.at("X"), 1u);
  EXPECT_EQ(v.at("Y"), 2u);
  b.Undo(0);
  EXPECT_EQ(v.size(), 2u);  // independent snapshot
}

TEST(BindingsTest, RebindAfterUndo) {
  Bindings b;
  size_t mark = b.Mark();
  b.Bind("X", 1);
  b.Undo(mark);
  b.Bind("X", 9);
  EXPECT_EQ(b.Get("X"), 9u);
}

}  // namespace
}  // namespace pathlog
