// Integration suite: every numbered example of the paper, executed
// against the paper's own scenario and checked for the claimed
// behaviour. EXPERIMENTS.md indexes these tests by example number.

#include <gtest/gtest.h>

#include "ast/analysis.h"
#include "parser/parser.h"
#include "query/database.h"

namespace pathlog {
namespace {

/// The employee/vehicle universe used throughout sections 1-2.
constexpr const char* kCompanyFacts = R"(
  manager :: employee.
  automobile :: vehicle.

  mary : employee[age->30; city->newYork].
  mary[vehicles->>{car1, bike1}].
  car1 : automobile[cylinders->4; color->red; producedBy->acme].
  bike1 : vehicle[color->green].

  jim : manager[age->30; city->newYork].
  jim[vehicles->>{car2}].
  car2 : automobile[cylinders->4; color->red; producedBy->detroitMotors].

  sue : manager[age->45; city->detroit].
  sue[vehicles->>{car3}].
  car3 : automobile[cylinders->8; color->red; producedBy->detroitMotors].

  acme : company[city->newYork; president->sue].
  detroitMotors : company[city->detroit; president->jim].

  mary[boss->jim].
)";

class PaperExamplesTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(db_.Load(kCompanyFacts).ok()); }

  std::vector<std::string> Col(std::string_view query,
                               const std::string& var) {
    Result<ResultSet> rs = db_.Query(query);
    EXPECT_TRUE(rs.ok()) << query << ": " << rs.status();
    return rs.ok() ? rs->Column(var, db_.store())
                   : std::vector<std::string>{};
  }

  std::vector<std::string> EvalNames(std::string_view ref) {
    Result<std::vector<Oid>> r = db_.Eval(ref);
    EXPECT_TRUE(r.ok()) << ref << ": " << r.status();
    std::vector<std::string> names;
    if (r.ok()) {
      for (Oid o : *r) names.push_back(db_.DisplayName(o));
      std::sort(names.begin(), names.end());
    }
    return names;
  }

  Database db_;
};

// --- Section 1: queries (1.1)-(1.4) ----------------------------------

TEST_F(PaperExamplesTest, Query11_O2SQLStyle) {
  // SELECT Y.color FROM X IN employee, Y IN X.vehicles
  // WHERE Y IN automobile — as a PathLog conjunction mirroring the
  // decomposed O2SQL form.
  EXPECT_EQ(Col("?- X:employee, X[vehicles->>{Y:automobile}], Y.color[C].",
                "C"),
            (std::vector<std::string>{"red"}));
}

TEST_F(PaperExamplesTest, Query12_XSQLSelectors) {
  // SELECT Z FROM employee X, automobile Y WHERE X.vehicles[Y].color[Z]
  EXPECT_EQ(Col("?- X:employee..vehicles[Y]:automobile.color[Z].", "Z"),
            (std::vector<std::string>{"red"}));
}

TEST_F(PaperExamplesTest, Query13_CalculusStyle) {
  // { Z | employee.vehicles.automobile.color[Z] } — class names in the
  // path, which PathLog expresses with a class molecule in the path.
  EXPECT_EQ(EvalNames("(X:employee)..vehicles:automobile.color"),
            (std::vector<std::string>{"red"}));
}

TEST_F(PaperExamplesTest, Query14_ConjunctionOfPaths) {
  // XSQL needs two path conditions for the 4-cylinder restriction.
  EXPECT_EQ(Col("?- X:employee..vehicles[Y]:automobile.color[Z], "
                "Y[cylinders->4].",
                "Z"),
            (std::vector<std::string>{"red"}));
  // sue's car3 has 8 cylinders; restricting to 8 selects red as well
  // (all cars are red here), but restricting to 12 selects nothing.
  EXPECT_EQ(Col("?- X:employee..vehicles[Y]:automobile.color[Z], "
                "Y[cylinders->12].",
                "Z"),
            (std::vector<std::string>{}));
}

// --- Section 2: the second dimension ---------------------------------

TEST_F(PaperExamplesTest, Path21_SecondDimension) {
  // (2.1): one two-dimensional path instead of a conjunction.
  EXPECT_EQ(Col("?- X:employee[age->30; city->newYork]"
                "..vehicles:automobile[cylinders->4].color[Z].",
                "Z"),
            (std::vector<std::string>{"red"}));
  // Only mary and jim are 30-year-old New Yorkers.
  EXPECT_EQ(Col("?- X:employee[age->30; city->newYork]"
                "..vehicles:automobile[cylinders->4].color[Z].",
                "X"),
            (std::vector<std::string>{"jim", "mary"}));
}

TEST_F(PaperExamplesTest, Equivalence_14_vs_21) {
  // The decomposed form (1.4) and the one-path form (2.1) must agree.
  auto one_path = Col(
      "?- X:employee[age->30; city->newYork]"
      "..vehicles:automobile[cylinders->4].color[Z].",
      "Z");
  auto conjunction = Col(
      "?- X:employee[age->30], X[city->newYork], "
      "X[vehicles->>{Y:automobile}], Y[cylinders->4], Y.color[Z].",
      "Z");
  EXPECT_EQ(one_path, conjunction);
}

TEST_F(PaperExamplesTest, Filter23_NestedPathAsReference) {
  // (2.3): [city->X.boss.city] — mary lives where her boss jim lives.
  EXPECT_EQ(Col("?- X:employee[city->X.boss.city].", "X"),
            (std::vector<std::string>{"mary"}));
}

TEST_F(PaperExamplesTest, ManagerQuery_SingleReference) {
  // Section 2: managers with a red vehicle produced in Detroit by a
  // company they preside over. Only jim qualifies (car2, detroitMotors).
  EXPECT_EQ(Col("?- X:manager..vehicles[color->red]"
                ".producedBy[city->detroit; president->X].",
                "X"),
            (std::vector<std::string>{"jim"}));
}

TEST_F(PaperExamplesTest, Rule24_VirtualAddressObjects) {
  Database db;
  ASSERT_TRUE(db.Load(R"(
    ann : person[street->elmStreet; city->springfield].
    bob : person[street->mainStreet; city->shelbyville].
    X.address[street->X.street; city->X.city] <- X : person.
  )").ok());
  Result<ResultSet> rs =
      db.Query("?- X:person.address[street->S; city->C].");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->size(), 2u);
  EXPECT_TRUE(rs->ContainsRow(
      {{"X", "ann"}, {"S", "elmStreet"}, {"C", "springfield"}}, db.store()));
  EXPECT_TRUE(rs->ContainsRow(
      {{"X", "bob"}, {"S", "mainStreet"}, {"C", "shelbyville"}}, db.store()));
  // One virtual address per person.
  EXPECT_EQ(db.engine_stats().skolems_created, 2u);
}

// --- Section 4: references (4.1)-(4.5) --------------------------------

TEST_F(PaperExamplesTest, Formulas41to44_WellFormed) {
  for (const char* src : {
           "p1.age",                            // scalar path
           "p1..assistants",                    // (4.1)
           "p1..assistants[salary->1000]",      // (4.2)
           "p2[friends->>{p3,p4}]",             // (4.3)
           "p2[friends->>p1..assistants]",      // (4.4)
       }) {
    Result<RefPtr> r = ParseRef(src);
    ASSERT_TRUE(r.ok()) << src;
    EXPECT_TRUE(CheckWellFormed(**r).ok()) << src;
  }
}

TEST_F(PaperExamplesTest, Formula45_IllFormed) {
  Result<RefPtr> r = ParseRef("p2[boss->p1..assistants]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(CheckWellFormed(**r).code(), StatusCode::kIllFormed);
}

TEST_F(PaperExamplesTest, Section4_SetPathCompositions) {
  Database db;
  ASSERT_TRUE(db.Load(R"(
    p1[assistants->>{a1,a2}].
    a1[salary->1000]. a2[salary->2000].
    a1[projects->>{pr1,pr2}]. a2[projects->>{pr2,pr3}].
  )").ok());
  Result<std::vector<Oid>> salaries = db.Eval("p1..assistants.salary");
  ASSERT_TRUE(salaries.ok());
  EXPECT_EQ(salaries->size(), 2u);
  Result<std::vector<Oid>> projects = db.Eval("p1..assistants..projects");
  ASSERT_TRUE(projects.ok());
  EXPECT_EQ(projects->size(), 3u);
}

TEST_F(PaperExamplesTest, Section4_PaidForWithSetArgument) {
  Database db;
  ASSERT_TRUE(db.Load(R"(
    p1[vehicles->>{v1,v2}].
    p1[paidFor@(v1)->10000].
    p1[paidFor@(v2)->5000].
  )").ok());
  Result<std::vector<Oid>> prices = db.Eval("p1.paidFor@(p1..vehicles)");
  ASSERT_TRUE(prices.ok());
  EXPECT_EQ(prices->size(), 2u);
}

// --- Section 5: semantics in action -----------------------------------

TEST_F(PaperExamplesTest, Section5_BachelorSpouseIsFalse) {
  Database db;
  ASSERT_TRUE(db.Load("john : person.").ok());
  Result<bool> holds = db.Holds("john.spouse");
  ASSERT_TRUE(holds.ok());
  EXPECT_FALSE(*holds);
}

TEST_F(PaperExamplesTest, Section5_SetReferenceTrueIfNonEmpty) {
  Database db;
  ASSERT_TRUE(db.Load(R"(
    p1[assistants->>{a1,a2}].
    a1[salary->1000]. a2[salary->2000].
  )").ok());
  Result<bool> some = db.Holds("p1..assistants[salary->1000]");
  ASSERT_TRUE(some.ok());
  EXPECT_TRUE(*some);
  Result<bool> none = db.Holds("p1..assistants[salary->777]");
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(*none);
}

TEST_F(PaperExamplesTest, Section5_BindingRangesOverMembers) {
  // p1[assistants->>{X[salary->1000]}] "allows to access all such
  // assistants" one at a time.
  Database db;
  ASSERT_TRUE(db.Load(R"(
    p1[assistants->>{a1,a2,a3}].
    a1[salary->1000]. a2[salary->2000]. a3[salary->1000].
  )").ok());
  Result<ResultSet> rs = db.Query("?- p1[assistants->>{X[salary->1000]}].");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->Column("X", db.store()),
            (std::vector<std::string>{"a1", "a3"}));
}

TEST_F(PaperExamplesTest, Section5_NoNestedSets) {
  Database db;
  ASSERT_TRUE(db.Load(R"(
    john[kids->>{tim,mary}].
    tim[kids->>{sally}].
    mary[kids->>{tom}].
  )").ok());
  Result<std::vector<Oid>> grandkids = db.Eval("john..kids..kids");
  ASSERT_TRUE(grandkids.ok());
  // A flat set of grandchildren, not a set of sets.
  EXPECT_EQ(grandkids->size(), 2u);
}

// --- Section 6: programming in PathLog --------------------------------

TEST_F(PaperExamplesTest, Section6_IntensionalPower) {
  Database db;
  ASSERT_TRUE(db.Load(R"(
    a1 : automobile[engine->e1].
    e1[power->150].
    X[power->Y] <- X:automobile.engine[power->Y].
  )").ok());
  Result<std::vector<Oid>> power = db.Eval("a1.power");
  ASSERT_TRUE(power.ok());
  ASSERT_EQ(power->size(), 1u);
  EXPECT_EQ(db.DisplayName((*power)[0]), "150");
}

TEST_F(PaperExamplesTest, Rule61_VirtualBoss) {
  Database db;
  ASSERT_TRUE(db.Load(R"(
    p1 : employee[worksFor->cs1].
    X.boss[worksFor->D] <- X : employee[worksFor->D].
  )").ok());
  Result<bool> holds = db.Holds("p1.boss[worksFor->cs1]");
  ASSERT_TRUE(holds.ok());
  EXPECT_TRUE(*holds);
  EXPECT_EQ(db.engine_stats().skolems_created, 1u);
}

TEST_F(PaperExamplesTest, Rule62_NoVirtualBoss) {
  Database db;
  ASSERT_TRUE(db.Load(R"(
    p1 : employee[worksFor->cs1].
    p2 : employee[worksFor->cs2; boss->b2].
    Z[worksFor->D] <- X : employee[worksFor->D].boss[Z].
  )").ok());
  Result<bool> b2_works = db.Holds("b2[worksFor->cs2]");
  ASSERT_TRUE(b2_works.ok());
  EXPECT_TRUE(*b2_works);
  Result<bool> p1_boss = db.Holds("p1.boss");
  ASSERT_TRUE(p1_boss.ok());
  EXPECT_FALSE(*p1_boss);
  EXPECT_EQ(db.engine_stats().skolems_created, 0u);
}

TEST_F(PaperExamplesTest, Program64_DescTransitiveClosure) {
  Database db;
  ASSERT_TRUE(db.Load(R"(
    peter[kids->>{tim,mary}].
    tim[kids->>{sally}].
    mary[kids->>{tom,paul}].
    X[desc->>{Y}] <- X[kids->>{Y}].
    X[desc->>{Y}] <- X..desc[kids->>{Y}].
  )").ok());
  Result<std::vector<Oid>> desc = db.Eval("peter..desc");
  ASSERT_TRUE(desc.ok());
  std::vector<std::string> names;
  for (Oid o : *desc) names.push_back(db.DisplayName(o));
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"mary", "paul", "sally", "tim",
                                             "tom"}));
}

TEST_F(PaperExamplesTest, Section6_GenericTcYieldsPaperAnswer) {
  // "applying kids.tc to peter yields
  //  peter[(kids.tc)->>{tim,mary,sally,tom,paul}]".
  Database db;
  ASSERT_TRUE(db.Load(R"(
    peter[kids->>{tim,mary}].
    tim[kids->>{sally}].
    mary[kids->>{tom,paul}].
    X[(M.tc)->>{Y}] <- X[M->>{Y}].
    X[(M.tc)->>{Y}] <- X..(M.tc)[M->>{Y}].
  )").ok());
  Result<bool> holds =
      db.Holds("peter[(kids.tc)->>{tim,mary,sally,tom,paul}]");
  ASSERT_TRUE(holds.ok()) << holds.status();
  EXPECT_TRUE(*holds);
  // And nothing more: the closure has exactly five members.
  Result<std::vector<Oid>> all = db.Eval("peter..(kids.tc)");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 5u);
}

TEST_F(PaperExamplesTest, Section6_StratificationExample) {
  // "A rule ... X[friends->>p1..assistants] should only then be
  // applied, if the set of p1's assistants is already defined."
  Database db;
  ASSERT_TRUE(db.Load(R"(
    p1[staff->>{a1,a2}].
    X[assistants->>{Y}] <- X[staff->>{Y}].
    X[friends->>p1..assistants] <- X : person.
    q : person.
  )").ok());
  ASSERT_TRUE(db.Materialize().ok());
  EXPECT_GE(db.engine_stats().num_strata, 2);
  Result<bool> holds = db.Holds("q[friends->>{a1,a2}]");
  ASSERT_TRUE(holds.ok());
  EXPECT_TRUE(*holds);
}

TEST_F(PaperExamplesTest, XSQLStyle22_SameAnswers) {
  // (2.2) puts the same 2-dimensional reference in a WHERE clause.
  EXPECT_EQ(Col("?- X[age->30; city->newYork]"
                "..vehicles[cylinders->4][Y].color[Z].",
                "Z"),
            (std::vector<std::string>{"red"}));
}

}  // namespace
}  // namespace pathlog
