#include "base/status.h"

#include <gtest/gtest.h>

#include "base/result.h"
#include "base/strings.h"

namespace pathlog {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = ParseError("line 3: oops");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "line 3: oops");
  EXPECT_EQ(s.ToString(), "ParseError: line 3: oops");
}

TEST(StatusTest, EveryConstructorMapsToItsCode) {
  EXPECT_EQ(IllFormed("x").code(), StatusCode::kIllFormed);
  EXPECT_EQ(UnsafeRule("x").code(), StatusCode::kUnsafeRule);
  EXPECT_EQ(NotStratifiable("x").code(), StatusCode::kNotStratifiable);
  EXPECT_EQ(ScalarConflict("x").code(), StatusCode::kScalarConflict);
  EXPECT_EQ(TypeError("x").code(), StatusCode::kTypeError);
  EXPECT_EQ(NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Cancelled("x").code(), StatusCode::kCancelled);
}

TEST(StatusTest, NewCodesHaveNames) {
  EXPECT_EQ(Unavailable("disk").ToString(), "Unavailable: disk");
  EXPECT_EQ(Cancelled("stop").ToString(), "Cancelled: stop");
}

TEST(StatusTest, CopyIsCheapAndShared) {
  Status a = NotFound("missing");
  Status b = a;
  EXPECT_EQ(b.message(), "missing");
  EXPECT_EQ(a.code(), b.code());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status(NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, OkStatusIsNormalisedToInternal) {
  Result<int> r = Status();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOut) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

TEST(StringsTest, StrCatMixesTypes) {
  EXPECT_EQ(StrCat("a", 1, 'b', true), "a1btrue");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringsTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ", "), "");
  EXPECT_EQ(StrJoin({"solo"}, ", "), "solo");
}

TEST(StringsTest, Predicates) {
  EXPECT_TRUE(StartsWith("pathlog", "path"));
  EXPECT_FALSE(StartsWith("pa", "path"));
  EXPECT_TRUE(IsAllDigits("123"));
  EXPECT_FALSE(IsAllDigits("12a"));
  EXPECT_FALSE(IsAllDigits(""));
}

}  // namespace
}  // namespace pathlog
