// End-to-end tests of the `pathlog` shell binary: drive it through a
// pipe and check the transcript. PATHLOG_SHELL_PATH is injected by
// CMake as the built binary's location.

#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

namespace pathlog {
namespace {

std::string RunShell(const std::string& input,
                     const std::string& args = "") {
  // ctest runs each test of this binary as its own process, in
  // parallel; the script path must be per-process or one test's
  // cleanup deletes another's input mid-read.
  const std::string script_path = ::testing::TempDir() + "/shell_input." +
                                  std::to_string(::getpid()) + ".txt";
  {
    std::ofstream out(script_path);
    out << input;
  }
  std::string cmd = std::string(PATHLOG_SHELL_PATH) + " " + args + " < " +
                    script_path + " 2>&1";
  std::array<char, 4096> buffer;
  std::string output;
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  if (pipe == nullptr) return output;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    output += buffer.data();
  }
  int rc = pclose(pipe);
  EXPECT_EQ(rc, 0) << output;
  std::remove(script_path.c_str());
  return output;
}

TEST(ShellTest, FactsAndQueries) {
  std::string out = RunShell(
      "mary : employee[age->30].\n"
      "?- X:employee[age->A].\n"
      "\\quit\n");
  EXPECT_NE(out.find("ok."), std::string::npos);
  EXPECT_NE(out.find("mary"), std::string::npos);
  EXPECT_NE(out.find("(1 answer)"), std::string::npos);
}

TEST(ShellTest, MultiLineClause) {
  std::string out = RunShell(
      "X[desc->>{Y}] <-\n"
      "  X[kids->>{Y}].\n"
      "peter[kids->>{tim}].\n"
      "?- peter[desc->>{Z}].\n"
      "\\quit\n");
  EXPECT_NE(out.find("tim"), std::string::npos);
}

TEST(ShellTest, ErrorsAreReportedNotFatal) {
  std::string out = RunShell(
      "this is ! garbage.\n"
      "mary[age->30].\n"
      "?- mary[age->A].\n"
      "\\quit\n");
  EXPECT_NE(out.find("ParseError"), std::string::npos);
  EXPECT_NE(out.find("30"), std::string::npos);
}

TEST(ShellTest, CommandsWork) {
  std::string out = RunShell(
      "mary[age->30].\n"
      "\\stats\n"
      "\\facts 5\n"
      "\\explain 0\n"
      "\\rules\n"
      "\\help\n"
      "\\quit\n");
  EXPECT_NE(out.find("scalar facts: 1"), std::string::npos);
  EXPECT_NE(out.find("mary[age->30]."), std::string::npos);
  EXPECT_NE(out.find("extensional"), std::string::npos);
  EXPECT_NE(out.find("no rules loaded"), std::string::npos);
  EXPECT_NE(out.find("PathLog shell commands"), std::string::npos);
}

TEST(ShellTest, ExplainQueryPrintsThePlan) {
  std::string out = RunShell(
      "mary : employee[age->30].\n"
      "\\explain ?- X:employee[age->A].\n"
      "\\explain nonsense\n"
      "\\quit\n");
  EXPECT_NE(out.find("plan:"), std::string::npos);
  EXPECT_NE(out.find("planner statistics: skew-aware"), std::string::npos);
  EXPECT_NE(out.find("usage: \\explain <generation> | \\explain ?- <query>"),
            std::string::npos);
}

TEST(ShellTest, SaveAndRestoreRoundTrip) {
  const std::string snap = ::testing::TempDir() + "/shell_session.snap";
  std::string out = RunShell(
      "p1 : employee[worksFor->cs1].\n"
      "X.boss[worksFor->D] <- X:employee[worksFor->D].\n"
      "?- p1.boss[worksFor->W].\n"
      "\\save " + snap + "\n"
      "\\quit\n");
  EXPECT_NE(out.find("saved."), std::string::npos);
  EXPECT_NE(out.find("cs1"), std::string::npos);

  std::string out2 = RunShell(
      "\\restore " + snap + "\n"
      "?- p1.boss[worksFor->W].\n"
      "\\quit\n");
  EXPECT_NE(out2.find("restored"), std::string::npos);
  EXPECT_NE(out2.find("cs1"), std::string::npos);
  std::remove(snap.c_str());
}

TEST(ShellTest, DurableSessionSurvivesRestart) {
  const std::string dir = ::testing::TempDir() + "/shell_durable";
  // Session one: assert facts and a rule. No \save — durability comes
  // from the WAL written before each "ok.".
  std::string out = RunShell(
      "p1 : employee[worksFor->cs1].\n"
      "X.boss[worksFor->D] <- X:employee[worksFor->D].\n"
      "?- p1.boss[worksFor->W].\n"
      "\\quit\n",
      "--durable " + dir);
  EXPECT_NE(out.find("durable session at"), std::string::npos);
  EXPECT_NE(out.find("cs1"), std::string::npos);

  // Session two: everything is back, and \checkpoint compacts.
  std::string out2 = RunShell(
      "?- p1.boss[worksFor->W].\n"
      "p2 : employee[worksFor->ee1].\n"
      "\\checkpoint\n"
      "\\quit\n",
      "--durable " + dir);
  EXPECT_NE(out2.find("rules recovered"), std::string::npos);
  EXPECT_NE(out2.find("cs1"), std::string::npos);
  EXPECT_NE(out2.find("checkpointed."), std::string::npos);

  // Session three: the checkpointed snapshot + fresh WAL recover too.
  std::string out3 = RunShell(
      "?- p2.boss[worksFor->W].\n"
      "\\quit\n",
      "--durable " + dir);
  EXPECT_NE(out3.find("ee1"), std::string::npos);

  std::remove((dir + "/snapshot.plgdb").c_str());
  std::remove((dir + "/wal.plgwal").c_str());
  std::remove(dir.c_str());
}

TEST(ShellTest, DurableFlagRequiresADirectory) {
  std::string cmd = std::string(PATHLOG_SHELL_PATH) +
                    " --durable </dev/null 2>&1";
  std::array<char, 4096> buffer;
  std::string output;
  FILE* pipe = popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    output += buffer.data();
  }
  int rc = pclose(pipe);
  EXPECT_NE(rc, 0);
  EXPECT_NE(output.find("--durable requires"), std::string::npos);
}

TEST(ShellTest, DurableOpenFailureExitsNonzeroWithAMessage) {
  // --durable pointing at a regular file cannot be opened as a
  // database directory: the shell must exit nonzero and say why on
  // stderr, not limp on with an in-memory session.
  const std::string not_a_dir = ::testing::TempDir() + "/shell_not_a_dir." +
                                std::to_string(::getpid());
  {
    std::ofstream out(not_a_dir);
    out << "just a file";
  }
  std::string cmd = std::string(PATHLOG_SHELL_PATH) + " --durable " +
                    not_a_dir + " </dev/null 2>&1";
  std::array<char, 4096> buffer;
  std::string output;
  FILE* pipe = popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    output += buffer.data();
  }
  int rc = pclose(pipe);
  EXPECT_NE(rc, 0) << output;
  EXPECT_NE(output.find(not_a_dir), std::string::npos) << output;
  EXPECT_EQ(output.find("durable session at"), std::string::npos)
      << "no session banner on a failed open: " << output;
  std::remove(not_a_dir.c_str());
}

TEST(ShellTest, HealthCommandReportsInMemoryMode) {
  std::string out = RunShell(
      "mary : employee[age->30].\n"
      "\\health\n"
      "\\quit\n");
  EXPECT_NE(out.find("durable:          no"), std::string::npos) << out;
  EXPECT_NE(out.find("mode:             read-write"), std::string::npos)
      << out;
  EXPECT_NE(out.find("degraded entries: 0"), std::string::npos) << out;
  EXPECT_NE(out.find("objects:"), std::string::npos) << out;
}

TEST(ShellTest, HealthCommandReportsDurableSession) {
  const std::string dir = ::testing::TempDir() + "/shell_health_durable." +
                          std::to_string(::getpid());
  std::string out = RunShell(
      "p1 : employee.\n"
      "\\health\n"
      "\\quit\n",
      "--durable " + dir);
  EXPECT_NE(out.find("durable:          yes"), std::string::npos) << out;
  EXPECT_NE(out.find("mode:             read-write"), std::string::npos)
      << out;
  EXPECT_NE(out.find("wal retries:      0"), std::string::npos) << out;
  std::remove((dir + "/snapshot.plgdb").c_str());
  std::remove((dir + "/wal.plgwal").c_str());
  std::remove(dir.c_str());
}

TEST(ShellTest, MetricsCommandPrintsPrometheusText) {
  std::string out = RunShell(
      "mary : employee[age->30].\n"
      "?- mary[age->A].\n"
      "\\metrics\n"
      "\\quit\n");
  EXPECT_NE(out.find("# TYPE pathlog_queries_total counter"),
            std::string::npos);
  EXPECT_NE(out.find("pathlog_store_isa_facts_total 1"), std::string::npos);
}

TEST(ShellTest, ProfileToggleAndReport) {
  std::string out = RunShell(
      "peter[kids->>{tim,mary}].\n"
      "X[desc->>{Y}] <- X[kids->>{Y}].\n"
      "\\profile on\n"
      "?- peter[desc->>{Z}].\n"
      "\\profile\n"
      "\\profile off\n"
      "\\profile\n"
      "\\quit\n");
  EXPECT_NE(out.find("profiling on."), std::string::npos);
  EXPECT_NE(out.find("rule profile (1 rules"), std::string::npos);
  EXPECT_NE(out.find("X[desc->>{Y}] <- X[kids->>{Y}]."), std::string::npos);
  EXPECT_NE(out.find("driver literals"), std::string::npos);
  EXPECT_NE(out.find("profiling off."), std::string::npos);
  // After \profile off the database reports no attached profiler.
  EXPECT_NE(out.find("no profiler attached"), std::string::npos);
}

TEST(ShellTest, TraceCommandAndExitFlagsWriteValidJson) {
  const std::string base = ::testing::TempDir() + "/shell_obs." +
                           std::to_string(::getpid());
  const std::string trace1 = base + ".trace1.json";
  const std::string trace2 = base + ".trace2.json";
  const std::string metrics = base + ".metrics.json";
  std::string out = RunShell(
      "peter[kids->>{tim}].\n"
      "X[desc->>{Y}] <- X[kids->>{Y}].\n"
      "?- peter[desc->>{Z}].\n"
      "\\trace " + trace1 + "\n"
      "\\metrics " + metrics + "\n"
      "\\quit\n",
      "--trace-out=" + trace2);
  EXPECT_NE(out.find("wrote trace"), std::string::npos);
  EXPECT_NE(out.find("wrote metrics JSON"), std::string::npos);
  for (const std::string& path : {trace1, trace2}) {
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos) << path;
    EXPECT_NE(text.find("db.query"), std::string::npos) << path;
    std::remove(path.c_str());
  }
  std::ifstream in(metrics);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("pathlog_queries_total"), std::string::npos);
  std::remove(metrics.c_str());
}

TEST(ShellTest, StatsShowsElapsedAndStratumIterations) {
  std::string out = RunShell(
      "peter[kids->>{tim}].\n"
      "X[desc->>{Y}] <- X[kids->>{Y}].\n"
      "\\stats\n"
      "\\quit\n");
  EXPECT_NE(out.find(" ms\n"), std::string::npos);
  EXPECT_NE(out.find("rule evaluations"), std::string::npos);
  EXPECT_NE(out.find("iterations by stratum:"), std::string::npos);
}

TEST(ShellTest, LoadsProgramFileFromArgv) {
  const std::string prog = ::testing::TempDir() + "/shell_prog.plg";
  {
    std::ofstream out(prog);
    out << "peter[kids->>{tim,mary}].\n"
           "X[desc->>{Y}] <- X[kids->>{Y}].\n";
  }
  std::string out = RunShell(
      "?- peter[desc->>{Z}].\n"
      "\\quit\n",
      prog);
  EXPECT_NE(out.find("loaded"), std::string::npos);
  EXPECT_NE(out.find("(2 answers)"), std::string::npos);
  std::remove(prog.c_str());
}

// ---------------------------------------------------------------------------
// Serving diagnostics: stats server, flight recorder, query log, \why.

TEST(ShellTest, StatsPortZeroStartsTheServerOnAnEphemeralPort) {
  std::string out = RunShell(
      "a[v->1].\n"
      "\\quit\n",
      "--stats-port=0");
  EXPECT_NE(out.find("stats server listening on 127.0.0.1:"),
            std::string::npos);
}

TEST(ShellTest, StatsServerCommandStartsAndIsIdempotent) {
  std::string out = RunShell(
      "\\stats_server 0\n"
      "\\stats_server 0\n"
      "\\quit\n");
  EXPECT_NE(out.find("stats server listening on"), std::string::npos);
  EXPECT_NE(out.find("already listening"), std::string::npos);
}

TEST(ShellTest, FlightRecorderSummaryAndDump) {
  const std::string dump = ::testing::TempDir() + "/shell_flight." +
                           std::to_string(::getpid()) + ".trace.json";
  std::string out = RunShell(
      "a[v->1].\n"
      "?- a[v->V].\n"
      "\\flightrec\n"
      "\\flightrec dump " + dump + "\n"
      "\\quit\n");
  EXPECT_NE(out.find("flight recorder:"), std::string::npos);
  EXPECT_NE(out.find("db.query"), std::string::npos);
  EXPECT_NE(out.find("wrote flight-recorder dump to"), std::string::npos);
  std::ifstream in(dump);
  ASSERT_TRUE(in.good()) << dump;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  EXPECT_NE(bytes.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(bytes.find("db.query"), std::string::npos);
  std::remove(dump.c_str());
}

TEST(ShellTest, QueryLogFlagWritesJsonlAndQuerylogShowsIt) {
  const std::string log_path = ::testing::TempDir() + "/shell_ql." +
                               std::to_string(::getpid()) + ".jsonl";
  std::string out = RunShell(
      "a[v->1].\n"
      "?- a[v->V].\n"
      "\\querylog\n"
      "\\quit\n",
      "--query-log=" + log_path);
  EXPECT_NE(out.find("\"kind\":\"query\""), std::string::npos);
  EXPECT_NE(out.find("records this session"), std::string::npos);
  std::ifstream in(log_path);
  ASSERT_TRUE(in.good()) << log_path;
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"plan_fingerprint\":"), std::string::npos);
  EXPECT_NE(line.find("\"budget\":{"), std::string::npos);
  EXPECT_NE(line.find("\"routes\":{"), std::string::npos);
  std::remove(log_path.c_str());
}

TEST(ShellTest, QuerylogWorksWithoutAFileViaTheInMemoryRing) {
  std::string out = RunShell(
      "a[v->1].\n"
      "?- a[v->V].\n"
      "\\querylog\n"
      "\\quit\n");
  EXPECT_NE(out.find("\"kind\":\"query\""), std::string::npos);
}

TEST(ShellTest, WhyJsonPrintsMachineReadableProvenance) {
  std::string out = RunShell(
      "mary[age->30].\n"
      "?- mary[age->A].\n"
      "\\why --json 0\n"
      "\\why --json abc\n"
      "\\quit\n");
  EXPECT_NE(out.find("{\"gen\":0,\"fact\":\"mary[age->30]\","
                     "\"kind\":\"extensional\"}"),
            std::string::npos);
  EXPECT_NE(out.find("usage: \\why"), std::string::npos);
}

TEST(ShellTest, MetricsSummaryIncludesQuantiles) {
  std::string out = RunShell(
      "a[v->1].\n"
      "?- a[v->V].\n"
      "\\metrics\n"
      "\\quit\n");
  EXPECT_NE(out.find("# quantiles pathlog_query_ms p50="),
            std::string::npos);
}

}  // namespace
}  // namespace pathlog
