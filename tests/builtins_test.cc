// Built-in methods: self (paper section 4.1) and the comparison-guard
// extension (identity-preserving partial methods on integers).

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "query/database.h"
#include "semantics/structure.h"
#include "semantics/valuation.h"

namespace pathlog {
namespace {

class BuiltinsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Load(R"(
      a : employee[salary->900;  age->30].
      b : employee[salary->1500; age->40].
      c : employee[salary->2500; age->50].
    )").ok());
  }

  std::vector<std::string> Col(std::string_view query,
                               const std::string& var) {
    Result<ResultSet> rs = db_.Query(query);
    EXPECT_TRUE(rs.ok()) << query << ": " << rs.status();
    return rs.ok() ? rs->Column(var, db_.store())
                   : std::vector<std::string>{};
  }

  bool Holds(std::string_view ref) {
    Result<bool> h = db_.Holds(ref);
    EXPECT_TRUE(h.ok()) << ref << ": " << h.status();
    return h.ok() && *h;
  }

  Database db_;
};

TEST_F(BuiltinsTest, GuardAsGroundFormula) {
  EXPECT_TRUE(Holds("900.lt@(1000)"));
  EXPECT_FALSE(Holds("1500.lt@(1000)"));
  EXPECT_TRUE(Holds("1500.geq@(1500)"));
  EXPECT_FALSE(Holds("1500.gt@(1500)"));
  EXPECT_TRUE(Holds("1500.leq@(1500)"));
  EXPECT_TRUE(Holds("30.intEq@(30)"));
  EXPECT_TRUE(Holds("30.intNeq@(31)"));
  EXPECT_FALSE(Holds("30.intNeq@(30)"));
  EXPECT_TRUE(Holds("40.between@(30,50)"));
  EXPECT_FALSE(Holds("29.between@(30,50)"));
}

TEST_F(BuiltinsTest, GuardDenotesItsReceiver) {
  Result<std::vector<Oid>> v = db_.Eval("900.lt@(1000)");
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->size(), 1u);
  EXPECT_EQ(db_.DisplayName((*v)[0]), "900");
}

TEST_F(BuiltinsTest, GuardsFilterQueryAnswers) {
  EXPECT_EQ(Col("?- X:employee[salary->S], S.geq@(1500).", "X"),
            (std::vector<std::string>{"b", "c"}));
  EXPECT_EQ(Col("?- X:employee[salary->S], S.between@(1000,2000).", "X"),
            (std::vector<std::string>{"b"}));
  // Guards compose with paths: the salary itself flows on.
  EXPECT_EQ(Col("?- X:employee[salary->S.lt@(1000)], X[age->A].", "A"),
            (std::vector<std::string>{"30"}));
}

TEST_F(BuiltinsTest, GuardsOnNonIntegersAreUndefined) {
  EXPECT_FALSE(Holds("a.lt@(1000)"));
  EXPECT_FALSE(Holds("900.lt@(a)"));
  EXPECT_FALSE(Holds("900.between@(1,a)"));
}

TEST_F(BuiltinsTest, GuardsWorkInRules) {
  ASSERT_TRUE(db_.Load(R"(
    X[wellPaid->yes] <- X:employee[salary->S], S.geq@(1500).
  )").ok());
  EXPECT_EQ(Col("?- X[wellPaid->yes].", "X"),
            (std::vector<std::string>{"b", "c"}));
}

TEST_F(BuiltinsTest, GuardsMatchDefinition4Semantics) {
  // Valuate is below the Database front end: intern the query names.
  db_.store().InternInt(1000);
  db_.store().InternSymbol(std::string(kLtName));
  SemanticStructure I(db_.store());
  Result<RefPtr> ok = ParseRef("900.lt@(1000)");
  Result<RefPtr> no = ParseRef("2500.lt@(1000)");
  ASSERT_TRUE(ok.ok());
  ASSERT_TRUE(no.ok());
  Result<bool> e1 = Entails(I, **ok, {});
  Result<bool> e2 = Entails(I, **no, {});
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  EXPECT_TRUE(*e1);
  EXPECT_FALSE(*e2);
}

TEST_F(BuiltinsTest, BuiltinsCannotBeDefinedInHeads) {
  Status st = db_.Load("X[lt@(5)->X] <- X:employee.");
  ASSERT_TRUE(st.ok());  // loading is fine; the head check fires at run
  EXPECT_EQ(db_.Materialize().code(), StatusCode::kIllFormed);
}

TEST_F(BuiltinsTest, SelfCannotBeDefinedInHeads) {
  Database db;
  ASSERT_TRUE(db.Load("X[self->X] <- X:employee. e:employee.").ok());
  EXPECT_EQ(db.Materialize().code(), StatusCode::kIllFormed);
}

TEST_F(BuiltinsTest, StoredFactsDoNotShadowGuards) {
  // A user symbol `lt` with stored facts would be ambiguous; builtins
  // win, so the guard semantics stays stable.
  EXPECT_TRUE(Holds("900.lt@(901)"));
}

TEST_F(BuiltinsTest, GuardInFilterPosition) {
  // Guards can appear as molecule filters too: value position receives
  // the receiver.
  EXPECT_EQ(Col("?- X:employee[salary->S], S[lt@(1000)->V].", "V"),
            (std::vector<std::string>{"900"}));
}

}  // namespace
}  // namespace pathlog
