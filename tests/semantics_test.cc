// Tests for the *literal* Definition 4/5 semantics (semantics/valuation)
// on a hand-built universe mirroring the paper's examples.

#include "semantics/valuation.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "semantics/structure.h"
#include "store/object_store.h"

namespace pathlog {
namespace {

class SemanticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_.InternSymbol(kSelfMethodName);
    p1_ = store_.InternSymbol("p1");
    a1_ = store_.InternSymbol("a1");
    a2_ = store_.InternSymbol("a2");
    john_ = store_.InternSymbol("john");
    employee_ = store_.InternSymbol("employee");
    manager_ = store_.InternSymbol("manager");
    Oid salary = store_.InternSymbol("salary");
    Oid assistants = store_.InternSymbol("assistants");
    Oid kids = store_.InternSymbol("kids");
    Oid age = store_.InternSymbol("age");
    v1000_ = store_.InternInt(1000);
    v2000_ = store_.InternInt(2000);
    // Names used by queries must be interned (the Database front end
    // does this automatically; these tests sit below it).
    store_.InternInt(30);
    store_.InternInt(31);
    store_.InternInt(9999);

    ASSERT_TRUE(store_.AddIsa(manager_, employee_).ok());
    ASSERT_TRUE(store_.AddIsa(p1_, manager_).ok());
    ASSERT_TRUE(store_.AddIsa(a1_, employee_).ok());
    ASSERT_TRUE(store_.AddIsa(a2_, employee_).ok());
    store_.AddSetMember(assistants, p1_, {}, a1_);
    store_.AddSetMember(assistants, p1_, {}, a2_);
    ASSERT_TRUE(store_.SetScalar(salary, a1_, {}, v1000_).ok());
    ASSERT_TRUE(store_.SetScalar(salary, a2_, {}, v2000_).ok());
    ASSERT_TRUE(store_.SetScalar(age, p1_, {}, store_.InternInt(30)).ok());
    // john is a bachelor: no spouse fact. His grandchildren:
    Oid tim = store_.InternSymbol("tim");
    Oid sally = store_.InternSymbol("sally");
    store_.AddSetMember(kids, john_, {}, tim);
    store_.AddSetMember(kids, tim, {}, sally);
  }

  std::vector<Oid> Val(std::string_view src, const VarValuation& nu = {}) {
    Result<RefPtr> r = ParseRef(src);
    EXPECT_TRUE(r.ok()) << r.status();
    SemanticStructure I(store_);
    Result<std::vector<Oid>> v = Valuate(I, **r, nu);
    EXPECT_TRUE(v.ok()) << src << ": " << v.status();
    return v.ok() ? *v : std::vector<Oid>{};
  }

  bool Holds(std::string_view src, const VarValuation& nu = {}) {
    Result<RefPtr> r = ParseRef(src);
    EXPECT_TRUE(r.ok()) << r.status();
    SemanticStructure I(store_);
    Result<bool> e = Entails(I, **r, nu);
    EXPECT_TRUE(e.ok()) << src << ": " << e.status();
    return e.ok() && *e;
  }

  ObjectStore store_;
  Oid p1_, a1_, a2_, john_, employee_, manager_, v1000_, v2000_;
};

TEST_F(SemanticsTest, NamesDenoteThemselves) {
  EXPECT_EQ(Val("p1"), std::vector<Oid>{p1_});
  EXPECT_EQ(Val("1000"), std::vector<Oid>{v1000_});
}

TEST_F(SemanticsTest, VariablesNeedTotalValuation) {
  Result<RefPtr> r = ParseRef("X");
  ASSERT_TRUE(r.ok());
  SemanticStructure I(store_);
  Result<std::vector<Oid>> v = Valuate(I, **r, {});
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Val("X", {{"X", p1_}}), std::vector<Oid>{p1_});
}

TEST_F(SemanticsTest, UninternedNameIsAnError) {
  Result<RefPtr> r = ParseRef("ghost");
  ASSERT_TRUE(r.ok());
  SemanticStructure I(store_);
  EXPECT_EQ(Valuate(I, **r, {}).status().code(), StatusCode::kNotFound);
}

TEST_F(SemanticsTest, UndefinedScalarPathDenotesNothing) {
  // "for a bachelor john the path john.spouse does not denote an
  // object, consequently, this path is considered false."
  store_.InternSymbol("spouse");
  EXPECT_EQ(Val("john.spouse"), std::vector<Oid>{});
  EXPECT_FALSE(Holds("john.spouse"));
}

TEST_F(SemanticsTest, SetPathDenotesAllMembers) {
  std::vector<Oid> expected{std::min(a1_, a2_), std::max(a1_, a2_)};
  EXPECT_EQ(Val("p1..assistants"), expected);
  EXPECT_TRUE(Holds("p1..assistants"));
}

TEST_F(SemanticsTest, SecondDimensionFiltersIntermediates) {
  EXPECT_EQ(Val("p1..assistants[salary->1000]"), std::vector<Oid>{a1_});
  // True because at least one such assistant exists (paper section 5).
  EXPECT_TRUE(Holds("p1..assistants[salary->1000]"));
  EXPECT_FALSE(Holds("p1..assistants[salary->9999]"));
}

TEST_F(SemanticsTest, ScalarMethodOverSetFlattens) {
  // The set of salaries of p1's assistants.
  std::vector<Oid> expected{std::min(v1000_, v2000_),
                            std::max(v1000_, v2000_)};
  EXPECT_EQ(Val("p1..assistants.salary"), expected);
}

TEST_F(SemanticsTest, NoNestedSets) {
  // john..kids..kids = grandchildren, not a set of sets.
  Oid sally = *store_.FindSymbol("sally");
  EXPECT_EQ(Val("john..kids..kids"), std::vector<Oid>{sally});
}

TEST_F(SemanticsTest, ClassMembershipRespectsHierarchy) {
  EXPECT_TRUE(Holds("p1:manager"));
  EXPECT_TRUE(Holds("p1:employee"));
  EXPECT_FALSE(Holds("a1:manager"));
  EXPECT_EQ(Val("p1:employee"), std::vector<Oid>{p1_});
  EXPECT_EQ(Val("a1:manager"), std::vector<Oid>{});
}

TEST_F(SemanticsTest, ScalarFilterChecksEquality) {
  EXPECT_TRUE(Holds("p1[age->30]"));
  EXPECT_FALSE(Holds("p1[age->31]"));
  EXPECT_EQ(Val("p1[age->30]"), std::vector<Oid>{p1_});
}

TEST_F(SemanticsTest, ExplicitSetFilterIsSubset) {
  EXPECT_TRUE(Holds("p1[assistants->>{a1}]"));
  EXPECT_TRUE(Holds("p1[assistants->>{a1,a2}]"));
  EXPECT_FALSE(Holds("p1[assistants->>{john}]"));
}

TEST_F(SemanticsTest, SetRefFilterIsSubset) {
  // a copy of the assistants as friends
  Oid friends = store_.InternSymbol("friends");
  Oid p2 = store_.InternSymbol("p2");
  store_.AddSetMember(friends, p2, {}, a1_);
  store_.AddSetMember(friends, p2, {}, a2_);
  store_.AddSetMember(friends, p2, {}, john_);
  EXPECT_TRUE(Holds("p2[friends->>p1..assistants]"));
  EXPECT_FALSE(Holds("p1[assistants->>p2..friends]"));  // john missing
}

TEST_F(SemanticsTest, LiteralDefinitionHasVacuousEmptySetCorner) {
  // Documented divergence from the active-domain evaluator: under the
  // literal Definition 4, an empty specified set is a subset of
  // everything, so the molecule below is entailed even though nobody
  // has any "enemies".
  store_.InternSymbol("enemies");
  EXPECT_TRUE(Holds("p1[assistants->>john..enemies]"));
}

TEST_F(SemanticsTest, SelfDenotesTheObjectItself) {
  EXPECT_EQ(Val("p1.self"), std::vector<Oid>{p1_});
  EXPECT_TRUE(Holds("p1[self->p1]"));
  EXPECT_FALSE(Holds("p1[self->john]"));
}

TEST_F(SemanticsTest, MethodArguments) {
  Oid salary = *store_.FindSymbol("salary");
  Oid y94 = store_.InternInt(1994);
  Oid v5 = store_.InternInt(50000);
  ASSERT_TRUE(store_.SetScalar(salary, john_, {y94}, v5).ok());
  EXPECT_EQ(Val("john.salary@(1994)"), std::vector<Oid>{v5});
  EXPECT_EQ(Val("john.salary"), std::vector<Oid>{});
}

TEST_F(SemanticsTest, SetValuedArgumentTakesAllCombinations) {
  Oid paid = store_.InternSymbol("paidFor");
  Oid vehicles = store_.InternSymbol("vehicles");
  Oid v1 = store_.InternSymbol("v1");
  Oid v2 = store_.InternSymbol("v2");
  Oid price1 = store_.InternInt(100);
  Oid price2 = store_.InternInt(200);
  store_.AddSetMember(vehicles, p1_, {}, v1);
  store_.AddSetMember(vehicles, p1_, {}, v2);
  ASSERT_TRUE(store_.SetScalar(paid, p1_, {v1}, price1).ok());
  ASSERT_TRUE(store_.SetScalar(paid, p1_, {v2}, price2).ok());
  std::vector<Oid> expected{price1, price2};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(Val("p1.paidFor@(p1..vehicles)"), expected);
}

TEST_F(SemanticsTest, NestedPathInsideFilter) {
  // (2.3)-style: [city->X.boss.city]
  Oid boss = store_.InternSymbol("boss");
  Oid city = store_.InternSymbol("city");
  Oid ny = store_.InternSymbol("newYork");
  ASSERT_TRUE(store_.SetScalar(boss, a1_, {}, p1_).ok());
  ASSERT_TRUE(store_.SetScalar(city, a1_, {}, ny).ok());
  ASSERT_TRUE(store_.SetScalar(city, p1_, {}, ny).ok());
  EXPECT_TRUE(Holds("a1[city->a1.boss.city]"));
  // a2 has no city at all.
  EXPECT_FALSE(Holds("a2[city->a2.boss.city]"));
}

TEST_F(SemanticsTest, EmptyFilterListRequiresDenotation) {
  // t0[] is entailed iff t0 denotes something.
  store_.InternSymbol("spouse");
  Result<RefPtr> some = ParseRef("p1..assistants");
  ASSERT_TRUE(some.ok());
  SemanticStructure I(store_);
  RefPtr mol = Ref::Molecule(*some, {});
  Result<bool> e = Entails(I, *mol, {});
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(*e);

  Result<RefPtr> none = ParseRef("john.spouse");
  ASSERT_TRUE(none.ok());
  RefPtr mol2 = Ref::Molecule(*none, {});
  Result<bool> e2 = Entails(I, *mol2, {});
  ASSERT_TRUE(e2.ok());
  EXPECT_FALSE(*e2);
}

TEST_F(SemanticsTest, BracketGroupingChangesMeaning) {
  // L : (integer.list) vs L : integer.list (paper section 4.1).
  Oid list = store_.InternSymbol("list");
  Oid integer = store_.InternSymbol("integer");
  Oid int_list = store_.InternSymbol("intList");
  Oid l1 = store_.InternSymbol("l1");
  ASSERT_TRUE(store_.SetScalar(list, integer, {}, int_list).ok());
  ASSERT_TRUE(store_.AddIsa(l1, int_list).ok());
  VarValuation nu{{"L", l1}};
  EXPECT_TRUE(Holds("L:(integer.list)", nu));
  // L : integer.list applies `list` to the molecule (L : integer),
  // which is empty since l1 is not an integer.
  EXPECT_FALSE(Holds("L:integer.list", nu));
}

}  // namespace
}  // namespace pathlog
