#include "store/object_store.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "store/fact.h"

namespace pathlog {
namespace {

TEST(StoreInternTest, SymbolsAreStable) {
  ObjectStore s;
  Oid a = s.InternSymbol("mary");
  Oid b = s.InternSymbol("mary");
  Oid c = s.InternSymbol("john");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(s.DisplayName(a), "mary");
  EXPECT_EQ(s.kind(a), ObjectKind::kSymbol);
  EXPECT_EQ(s.FindSymbol("mary"), a);
  EXPECT_EQ(s.FindSymbol("nobody"), std::nullopt);
}

TEST(StoreInternTest, IntsAndStringsAreDistinctNamespaces) {
  ObjectStore s;
  Oid i = s.InternInt(30);
  Oid t = s.InternString("30");
  Oid y = s.InternSymbol("thirty");
  EXPECT_NE(i, t);
  EXPECT_NE(i, y);
  EXPECT_EQ(s.IntValue(i), 30);
  EXPECT_EQ(s.kind(i), ObjectKind::kInt);
  EXPECT_EQ(s.kind(t), ObjectKind::kString);
  EXPECT_EQ(s.DisplayName(i), "30");
  EXPECT_EQ(s.DisplayName(t), "\"30\"");
  EXPECT_EQ(s.FindInt(30), i);
  EXPECT_EQ(s.FindInt(31), std::nullopt);
  EXPECT_EQ(s.FindString("30"), t);
}

TEST(StoreInternTest, NegativeInts) {
  ObjectStore s;
  Oid i = s.InternInt(-5);
  EXPECT_EQ(s.IntValue(i), -5);
  EXPECT_EQ(s.DisplayName(i), "-5");
}

TEST(StoreInternTest, AnonymousObjectsAreAlwaysFresh) {
  ObjectStore s;
  Oid a = s.NewAnonymous("_boss(p1)");
  Oid b = s.NewAnonymous("_boss(p1)");
  EXPECT_NE(a, b);
  EXPECT_EQ(s.kind(a), ObjectKind::kAnonymous);
  EXPECT_EQ(s.DisplayName(a), "_boss(p1)");
  // Anonymous objects are not in the name space.
  EXPECT_EQ(s.FindSymbol("_boss(p1)"), std::nullopt);
}

TEST(StoreHierarchyTest, TransitiveMembership) {
  ObjectStore s;
  Oid v1 = s.InternSymbol("v1");
  Oid automobile = s.InternSymbol("automobile");
  Oid vehicle = s.InternSymbol("vehicle");
  ASSERT_TRUE(s.AddIsa(automobile, vehicle).ok());
  ASSERT_TRUE(s.AddIsa(v1, automobile).ok());
  EXPECT_TRUE(s.IsA(v1, automobile));
  EXPECT_TRUE(s.IsA(v1, vehicle));
  EXPECT_TRUE(s.IsA(automobile, vehicle));
  EXPECT_FALSE(s.IsA(vehicle, automobile));
  // Irreflexive by default (documented deviation).
  EXPECT_FALSE(s.IsA(vehicle, vehicle));
}

TEST(StoreHierarchyTest, ClosureUpdatesWhenEdgeAddedLate) {
  // v1 : automobile first, automobile :: vehicle later — the member
  // must still reach the new ancestor.
  ObjectStore s;
  Oid v1 = s.InternSymbol("v1");
  Oid automobile = s.InternSymbol("automobile");
  Oid vehicle = s.InternSymbol("vehicle");
  ASSERT_TRUE(s.AddIsa(v1, automobile).ok());
  ASSERT_TRUE(s.AddIsa(automobile, vehicle).ok());
  EXPECT_TRUE(s.IsA(v1, vehicle));
  const std::vector<Oid>& members = s.Members(vehicle);
  EXPECT_NE(std::find(members.begin(), members.end(), v1), members.end());
}

TEST(StoreHierarchyTest, MembersAndAncestors) {
  ObjectStore s;
  Oid e1 = s.InternSymbol("e1");
  Oid e2 = s.InternSymbol("e2");
  Oid manager = s.InternSymbol("manager");
  Oid employee = s.InternSymbol("employee");
  ASSERT_TRUE(s.AddIsa(manager, employee).ok());
  ASSERT_TRUE(s.AddIsa(e1, manager).ok());
  ASSERT_TRUE(s.AddIsa(e2, employee).ok());
  EXPECT_EQ(s.Members(employee).size(), 3u);  // manager, e1, e2
  EXPECT_EQ(s.Members(manager).size(), 1u);
  EXPECT_EQ(s.Ancestors(e1).size(), 2u);
  EXPECT_EQ(s.Members(e1).size(), 0u);
}

TEST(StoreHierarchyTest, CycleRejected) {
  ObjectStore s;
  Oid a = s.InternSymbol("a");
  Oid b = s.InternSymbol("b");
  Oid c = s.InternSymbol("c");
  ASSERT_TRUE(s.AddIsa(a, b).ok());
  ASSERT_TRUE(s.AddIsa(b, c).ok());
  EXPECT_EQ(s.AddIsa(c, a).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.AddIsa(a, a).code(), StatusCode::kInvalidArgument);
}

TEST(StoreHierarchyTest, DuplicateEdgeIsIdempotent) {
  ObjectStore s;
  Oid a = s.InternSymbol("a");
  Oid b = s.InternSymbol("b");
  ASSERT_TRUE(s.AddIsa(a, b).ok());
  uint64_t gen = s.generation();
  ASSERT_TRUE(s.AddIsa(a, b).ok());
  EXPECT_EQ(s.generation(), gen);  // no new fact
  EXPECT_EQ(s.Members(b).size(), 1u);
}

TEST(StoreScalarTest, SetGetAndConflict) {
  ObjectStore s;
  Oid age = s.InternSymbol("age");
  Oid mary = s.InternSymbol("mary");
  Oid v30 = s.InternInt(30);
  Oid v31 = s.InternInt(31);
  ASSERT_TRUE(s.SetScalar(age, mary, {}, v30).ok());
  EXPECT_EQ(s.GetScalar(age, mary, {}), v30);
  // Idempotent re-assertion.
  uint64_t gen = s.generation();
  ASSERT_TRUE(s.SetScalar(age, mary, {}, v30).ok());
  EXPECT_EQ(s.generation(), gen);
  // Scalar methods are partial functions: different value conflicts.
  EXPECT_EQ(s.SetScalar(age, mary, {}, v31).code(),
            StatusCode::kScalarConflict);
}

TEST(StoreScalarTest, ArgumentsDistinguishInvocations) {
  ObjectStore s;
  Oid salary = s.InternSymbol("salary");
  Oid john = s.InternSymbol("john");
  Oid y94 = s.InternInt(1994);
  Oid y95 = s.InternInt(1995);
  Oid v1 = s.InternInt(50000);
  Oid v2 = s.InternInt(55000);
  ASSERT_TRUE(s.SetScalar(salary, john, {y94}, v1).ok());
  ASSERT_TRUE(s.SetScalar(salary, john, {y95}, v2).ok());
  EXPECT_EQ(s.GetScalar(salary, john, {y94}), v1);
  EXPECT_EQ(s.GetScalar(salary, john, {y95}), v2);
  EXPECT_EQ(s.GetScalar(salary, john, {}), std::nullopt);
  EXPECT_EQ(s.ScalarEntries(salary).size(), 2u);
  EXPECT_EQ(s.ScalarEntriesByRecv(salary, john).size(), 2u);
}

TEST(StoreSetTest, MembershipAndDedup) {
  ObjectStore s;
  Oid kids = s.InternSymbol("kids");
  Oid peter = s.InternSymbol("peter");
  Oid tim = s.InternSymbol("tim");
  Oid mary = s.InternSymbol("mary");
  EXPECT_TRUE(s.AddSetMember(kids, peter, {}, tim));
  EXPECT_TRUE(s.AddSetMember(kids, peter, {}, mary));
  EXPECT_FALSE(s.AddSetMember(kids, peter, {}, tim));  // duplicate
  const SetGroup* g = s.GetSetGroup(kids, peter, {});
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->members.size(), 2u);
  EXPECT_TRUE(g->Contains(tim));
  EXPECT_TRUE(g->Contains(mary));
  EXPECT_FALSE(g->Contains(peter));
  EXPECT_EQ(s.GetSetGroup(kids, tim, {}), nullptr);
}

TEST(StoreSetTest, GroupsByReceiver) {
  ObjectStore s;
  Oid kids = s.InternSymbol("kids");
  Oid a = s.InternSymbol("a");
  Oid b = s.InternSymbol("b");
  Oid x = s.InternSymbol("x");
  s.AddSetMember(kids, a, {}, x);
  s.AddSetMember(kids, b, {}, x);
  EXPECT_EQ(s.SetGroups(kids).size(), 2u);
  EXPECT_EQ(s.SetGroupsByRecv(kids, a).size(), 1u);
  EXPECT_EQ(s.SetGroupsByRecv(kids, x).size(), 0u);
}

TEST(StoreScalarTest, InvertedValueIndex) {
  ObjectStore s;
  Oid color = s.InternSymbol("color");
  Oid car1 = s.InternSymbol("car1");
  Oid car2 = s.InternSymbol("car2");
  Oid bike = s.InternSymbol("bike");
  Oid red = s.InternSymbol("red");
  Oid blue = s.InternSymbol("blue");
  ASSERT_TRUE(s.SetScalar(color, car1, {}, red).ok());
  ASSERT_TRUE(s.SetScalar(color, bike, {}, blue).ok());
  ASSERT_TRUE(s.SetScalar(color, car2, {}, red).ok());

  const std::vector<uint32_t>& reds = s.ScalarEntriesByValue(color, red);
  ASSERT_EQ(reds.size(), 2u);
  // Buckets keep insertion (generation) order.
  EXPECT_EQ(s.ScalarEntries(color)[reds[0]].recv, car1);
  EXPECT_EQ(s.ScalarEntries(color)[reds[1]].recv, car2);
  EXPECT_EQ(s.ScalarEntriesByValue(color, blue).size(), 1u);
  EXPECT_EQ(s.ScalarEntriesByValue(color, car1).size(), 0u);
  EXPECT_EQ(s.ScalarEntriesByValue(red, red).size(), 0u);  // not a method
  EXPECT_EQ(s.ScalarDistinctValues(color), 2u);
  EXPECT_EQ(s.ScalarDistinctValues(red), 0u);
}

TEST(StoreSetTest, InvertedMemberIndex) {
  ObjectStore s;
  Oid kids = s.InternSymbol("kids");
  Oid a = s.InternSymbol("a");
  Oid b = s.InternSymbol("b");
  Oid x = s.InternSymbol("x");
  Oid y = s.InternSymbol("y");
  s.AddSetMember(kids, a, {}, x);
  s.AddSetMember(kids, a, {}, y);
  s.AddSetMember(kids, b, {}, x);
  s.AddSetMember(kids, b, {}, x);  // duplicate: no new index entry

  const std::vector<SetMemberRef>& xs = s.SetGroupsByMember(kids, x);
  ASSERT_EQ(xs.size(), 2u);
  const std::vector<SetGroup>& groups = s.SetGroups(kids);
  EXPECT_EQ(groups[xs[0].group].recv, a);
  EXPECT_EQ(groups[xs[0].group].members[xs[0].pos], x);
  EXPECT_EQ(groups[xs[1].group].recv, b);
  EXPECT_EQ(groups[xs[1].group].members[xs[1].pos], x);
  // The addressed membership fact carries its own generation stamp.
  EXPECT_EQ(groups[xs[0].group].member_gens[xs[0].pos],
            groups[xs[0].group].MemberGen(x));
  EXPECT_EQ(s.SetGroupsByMember(kids, y).size(), 1u);
  EXPECT_EQ(s.SetGroupsByMember(kids, a).size(), 0u);
  EXPECT_EQ(s.SetDistinctMembers(kids), 2u);
}

TEST(StoreKindTest, ValidAsChecksKindAndRange) {
  ObjectStore s;
  Oid sym = s.InternSymbol("mary");
  Oid num = s.InternInt(7);
  EXPECT_TRUE(s.ValidAs(sym, ObjectKind::kSymbol));
  EXPECT_FALSE(s.ValidAs(sym, ObjectKind::kInt));
  EXPECT_TRUE(s.ValidAs(num, ObjectKind::kInt));
  EXPECT_FALSE(s.ValidAs(static_cast<Oid>(999), ObjectKind::kSymbol));
  EXPECT_EQ(s.IntValue(num), 7);
}

TEST(StoreMethodListsTest, OnlyMethodsWithFacts) {
  ObjectStore s;
  Oid age = s.InternSymbol("age");
  Oid kids = s.InternSymbol("kids");
  s.InternSymbol("unused");
  Oid mary = s.InternSymbol("mary");
  ASSERT_TRUE(s.SetScalar(age, mary, {}, s.InternInt(30)).ok());
  s.AddSetMember(kids, mary, {}, s.InternSymbol("tim"));
  EXPECT_EQ(s.ScalarMethods(), std::vector<Oid>{age});
  EXPECT_EQ(s.SetMethods(), std::vector<Oid>{kids});
}

TEST(StoreLogTest, GenerationsStampFactsInOrder) {
  ObjectStore s;
  Oid age = s.InternSymbol("age");
  Oid mary = s.InternSymbol("mary");
  Oid employee = s.InternSymbol("employee");
  EXPECT_EQ(s.generation(), 0u);
  ASSERT_TRUE(s.AddIsa(mary, employee).ok());
  ASSERT_TRUE(s.SetScalar(age, mary, {}, s.InternInt(30)).ok());
  EXPECT_EQ(s.generation(), 2u);
  EXPECT_EQ(s.FactAt(0).kind, FactKind::kIsa);
  EXPECT_EQ(s.FactAt(1).kind, FactKind::kScalar);
  EXPECT_EQ(s.FactAt(1).method, age);
  EXPECT_EQ(s.ScalarEntries(age)[0].gen, 1u);
}

TEST(StoreLogTest, FactToStringRendersSurfaceSyntax) {
  ObjectStore s;
  Oid salary = s.InternSymbol("salary");
  Oid kids = s.InternSymbol("kids");
  Oid john = s.InternSymbol("john");
  Oid employee = s.InternSymbol("employee");
  ASSERT_TRUE(s.AddIsa(john, employee).ok());
  ASSERT_TRUE(
      s.SetScalar(salary, john, {s.InternInt(1994)}, s.InternInt(50000)).ok());
  s.AddSetMember(kids, john, {}, s.InternSymbol("tim"));
  EXPECT_EQ(FactToString(s.FactAt(0), s), "john : employee");
  EXPECT_EQ(FactToString(s.FactAt(1), s), "john[salary@(1994)->50000]");
  EXPECT_EQ(FactToString(s.FactAt(2), s), "john[kids->>{tim}]");
}

TEST(StoreStatsTest, CountsByKind) {
  ObjectStore s;
  Oid a = s.InternSymbol("a");
  Oid b = s.InternSymbol("b");
  Oid m = s.InternSymbol("m");
  ASSERT_TRUE(s.AddIsa(a, b).ok());
  ASSERT_TRUE(s.SetScalar(m, a, {}, b).ok());
  s.AddSetMember(m, b, {}, a);
  s.AddSetMember(m, b, {}, b);
  ObjectStore::Stats st = s.ComputeStats();
  EXPECT_EQ(st.isa_facts, 1u);
  EXPECT_EQ(st.scalar_facts, 1u);
  EXPECT_EQ(st.set_facts, 2u);
  EXPECT_EQ(st.objects, 3u);
}

TEST(StoreCopyTest, CopyIsIndependentSnapshot) {
  ObjectStore s;
  Oid m = s.InternSymbol("m");
  Oid a = s.InternSymbol("a");
  ASSERT_TRUE(s.SetScalar(m, a, {}, a).ok());
  ObjectStore copy = s;
  Oid b = s.InternSymbol("b");
  ASSERT_TRUE(s.SetScalar(m, b, {}, b).ok());
  EXPECT_EQ(copy.FactCount(), 1u);
  EXPECT_EQ(s.FactCount(), 2u);
  EXPECT_EQ(copy.FindSymbol("b"), std::nullopt);
}

}  // namespace
}  // namespace pathlog
