// Differential guard for the semantic analyses' planner hook
// (DatabaseOptions::use_analysis_hints): re-running every differential
// program with the analyser feeding PlannerHints to the engine and the
// query planner must change neither the materialised fact set nor any
// query answer, under all three evaluation strategies. The hints are
// proofs ("this method is empty"), so only literal order and cost
// estimates may move — never answers.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "query/database.h"
#include "store/fact.h"
#include "workload/company.h"
#include "workload/kinship.h"
#include "workload/people.h"

namespace pathlog {
namespace {

enum class Workload { kChain, kTree, kDag, kCompany, kPeople };

void Generate(ObjectStore* store, Workload w) {
  switch (w) {
    case Workload::kChain:
      GenerateChain(store, 60);
      break;
    case Workload::kTree:
      GenerateTree(store, 80, 3);
      break;
    case Workload::kDag:
      GenerateRandomDag(store, 70, 2.0, 1234);
      break;
    case Workload::kCompany: {
      CompanyConfig cfg;
      cfg.num_employees = 60;
      cfg.num_companies = 5;
      GenerateCompany(store, cfg);
      break;
    }
    case Workload::kPeople: {
      PeopleConfig cfg;
      cfg.num_persons = 60;
      cfg.has_street_fraction = 0.6;
      GeneratePeople(store, cfg);
      break;
    }
  }
}

struct Case {
  const char* name;
  Workload workload;
  const char* rules;
};

// The same 11-program suite as tests/differential_test.cc.
const Case kCases[] = {
    {"desc_chain", Workload::kChain, R"(
       X[desc->>{Y}] <- X[kids->>{Y}].
       X[desc->>{Y}] <- X..desc[kids->>{Y}].
     )"},
    {"desc_tree", Workload::kTree, R"(
       X[desc->>{Y}] <- X[kids->>{Y}].
       X[desc->>{Y}] <- X..desc[kids->>{Y}].
     )"},
    {"desc_dag_leftrec", Workload::kDag, R"(
       X[desc->>{Y}] <- X[kids->>{Y}].
       X[desc->>{Y}] <- X[kids->>{Z}], Z[desc->>{Y}].
     )"},
    {"generic_tc_tree", Workload::kTree, R"(
       X[(M.tc)->>{Y}] <- X[M->>{Y}].
       X[(M.tc)->>{Y}] <- X..(M.tc)[M->>{Y}].
     )"},
    {"same_dept_pairs", Workload::kCompany, R"(
       X[colleague->>{Y}] <- X:employee[worksFor->D], Y:employee[worksFor->D].
     )"},
    {"virtual_boss", Workload::kCompany, R"(
       X.deputy[assists->X; inDept->D] <- X:manager, X[worksFor->D].
     )"},
    {"virtual_addresses", Workload::kPeople, R"(
       X.address[street->X.street; city->X.city] <- X:person.
     )"},
    {"stratified_sets", Workload::kChain, R"(
       X[reach->>{Y}] <- X[kids->>{Y}].
       X[reach->>{Y}] <- X..reach[kids->>{Y}].
       X[frontier->>p0..reach] <- X[self->p0].
     )"},
    {"negation_childless", Workload::kTree, R"(
       X[hasKid->1] <- X[kids->>{Y}].
       X[childless->1] <- X:thing, not X[hasKid->1].
       t0 : thing. t1 : thing.
     )"},
    {"inverted_reports", Workload::kCompany, R"(
       B[reports->>{X}] <- B[self->X.boss].
     )"},
    {"inverted_ownership", Workload::kCompany, R"(
       V[ownedBy->>{X}] <- V:automobile, X[vehicles->>{V}].
     )"},
};

class HintsDifferentialTest : public ::testing::TestWithParam<Case> {};

TEST_P(HintsDifferentialTest, AnalysisHintsChangeNoAnswers) {
  const Case& c = GetParam();
  for (EvalStrategy s :
       {EvalStrategy::kNaive, EvalStrategy::kSemiNaiveRules,
        EvalStrategy::kSemiNaiveDelta}) {
    std::set<std::string> facts[2];
    std::string answers[2];
    for (int hinted = 0; hinted < 2; ++hinted) {
      DatabaseOptions opts;
      opts.engine.strategy = s;
      opts.use_analysis_hints = hinted == 1;
      Database db(opts);
      Generate(&db.store(), c.workload);
      Status st = db.Load(c.rules);
      ASSERT_TRUE(st.ok()) << st;
      st = db.Materialize();
      ASSERT_TRUE(st.ok()) << st;
      for (uint64_t g = 0; g < db.store().generation(); ++g) {
        facts[hinted].insert(FactToString(db.store().FactAt(g), db.store()));
      }
      Result<ResultSet> rs = db.Query("?- X[kids->>{Y}].");
      ASSERT_TRUE(rs.ok()) << rs.status();
      answers[hinted] = rs->ToString(db.store());
    }
    EXPECT_EQ(facts[0], facts[1])
        << c.name << " strategy " << static_cast<int>(s);
    EXPECT_EQ(answers[0], answers[1])
        << c.name << " strategy " << static_cast<int>(s);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Programs, HintsDifferentialTest, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<Case>& param_info) {
      return param_info.param.name;
    });

TEST(HintsDifferentialTest2, ProvablyEmptyLiteralStillAnswersCorrectly) {
  // A body literal over a method the analyser proves empty: the hinted
  // planner costs it at zero and may move it first, but the rule still
  // derives nothing — exactly like the unhinted run.
  for (int hinted = 0; hinted < 2; ++hinted) {
    DatabaseOptions opts;
    opts.use_analysis_hints = hinted == 1;
    Database db(opts);
    Status st = db.Load(R"(
      alice[age->30]. bob[age->40].
      X[senior->1] <- X[age->A], X[ghost->1].
      X[adult->1] <- X[age->A], A.geq@(18).
    )");
    ASSERT_TRUE(st.ok()) << st;
    ASSERT_TRUE(db.Materialize().ok());
    Result<bool> senior = db.Holds("alice[senior->1]");
    ASSERT_TRUE(senior.ok());
    EXPECT_FALSE(*senior);
    Result<bool> adult = db.Holds("alice[adult->1]");
    ASSERT_TRUE(adult.ok());
    EXPECT_TRUE(*adult);
  }
}

TEST(HintsDifferentialTest2, HintsSurviveIncrementalLoads) {
  // Hints are refreshed on every materialisation: a method that was
  // provably empty gains a producer in a later Load, and the hinted
  // database must pick up the new derivations.
  DatabaseOptions opts;
  opts.use_analysis_hints = true;
  Database db(opts);
  ASSERT_TRUE(db.Load(R"(
    alice[age->30].
    X[senior->1] <- X[age->A], X[emeritus->1].
  )").ok());
  ASSERT_TRUE(db.Materialize().ok());
  Result<bool> senior = db.Holds("alice[senior->1]");
  ASSERT_TRUE(senior.ok());
  EXPECT_FALSE(*senior);

  ASSERT_TRUE(db.Load("X[emeritus->1] <- X[age->A], A.geq@(30).").ok());
  ASSERT_TRUE(db.Materialize().ok());
  senior = db.Holds("alice[senior->1]");
  ASSERT_TRUE(senior.ok());
  EXPECT_TRUE(*senior);
}

}  // namespace
}  // namespace pathlog
