#include "ast/printer.h"

#include <gtest/gtest.h>

#include "ast/program.h"
#include "ast/ref.h"
#include "parser/parser.h"

namespace pathlog {
namespace {

// Round-trip property: parse, print, re-parse — the two parses must be
// structurally equal and the two printings identical.
class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, ParsePrintParse) {
  const char* src = GetParam();
  Result<RefPtr> first = ParseRef(src);
  ASSERT_TRUE(first.ok()) << src << " -> " << first.status();
  std::string printed = ToString(**first);
  Result<RefPtr> second = ParseRef(printed);
  ASSERT_TRUE(second.ok()) << printed << " -> " << second.status();
  EXPECT_TRUE(RefEquals(**first, **second)) << printed;
  EXPECT_EQ(printed, ToString(**second));
}

INSTANTIATE_TEST_SUITE_P(
    References, RoundTripTest,
    ::testing::Values(
        "mary", "X", "42", "-3", "\"a string\"", "(mary)",
        "mary.spouse", "p1..assistants", "p1..assistants.salary",
        "p1..assistants..projects", "john.salary@(1994)",
        "p1.paidFor@(p1..vehicles)", "mary[boss->peter]",
        "mary[age->30; boss->peter]", "p2[friends->>{p3,p4}]",
        "p2[friends->>p1..assistants]", "X:employee",
        "X:employee[age->30; city->newYork]..vehicles"
        ":automobile[cylinders->4].color[self->Z]",
        "mary.spouse[boss->mary[age->25]].age",
        "X:manager..vehicles[color->red]"
        ".producedBy[city->detroit; president->X]",
        "L:(integer.list)", "peter..(kids.tc)",
        "X[(M.tc)->>{Y}]", "a[m@(1,2)->b]", "a[m@(x)->>{y,z}]",
        "X[city->X.boss.city]"));

class RuleRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RuleRoundTripTest, ParsePrintParse) {
  const char* src = GetParam();
  Result<Rule> first = ParseRule(src);
  ASSERT_TRUE(first.ok()) << src << " -> " << first.status();
  std::string printed = ToString(*first);
  Result<Rule> second = ParseRule(printed);
  ASSERT_TRUE(second.ok()) << printed << " -> " << second.status();
  EXPECT_EQ(printed, ToString(*second));
}

INSTANTIATE_TEST_SUITE_P(
    Rules, RuleRoundTripTest,
    ::testing::Values(
        "mary[age->30].",
        "peter[kids->>{tim,mary}].",
        "X[power->Y] <- X:automobile.engine[power->Y].",
        "X.boss[worksFor->D] <- X:employee[worksFor->D].",
        "Z[worksFor->D] <- X:employee[worksFor->D].boss[self->Z].",
        "X.address[street->X.street; city->X.city] <- X:person.",
        "X[desc->>{Y}] <- X[kids->>{Y}].",
        "X[desc->>{Y}] <- X..desc[kids->>{Y}].",
        "X[(M.tc)->>{Y}] <- X[M->>{Y}].",
        "X[(M.tc)->>{Y}] <- X..(M.tc)[M->>{Y}].",
        "X[a->1] <- X:thing, not X[b->2]."));

TEST(PrinterTest, LiteralNegation) {
  Result<Rule> rule = ParseRule("X[a->1] <- not X[b->2], X:thing.");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(ToString(rule->body[0]), "not X[b->2]");
  EXPECT_EQ(ToString(rule->body[1]), "X:thing");
}

TEST(PrinterTest, EmptyFilterListPrintsBrackets) {
  RefPtr mol = Ref::Molecule(Ref::Name("mary"), {});
  EXPECT_EQ(ToString(*mol), "mary[]");
}

TEST(PrinterTest, ProgramPrintsAllClauses) {
  Result<Program> p = ParseProgram(
      "person[age => integer].\n"
      "mary[age->30].\n"
      "?- X:person.\n");
  ASSERT_TRUE(p.ok());
  std::string printed = ToString(*p);
  EXPECT_NE(printed.find("person[age => integer]."), std::string::npos);
  EXPECT_NE(printed.find("mary[age->30]."), std::string::npos);
  EXPECT_NE(printed.find("?- X:person."), std::string::npos);
}

TEST(PrinterTest, ClassFiltersInterleaveWithBrackets) {
  Result<RefPtr> r = ParseRef("X:employee[age->30]:manager[city->detroit]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ToString(**r), "X:employee[age->30]:manager[city->detroit]");
}

}  // namespace
}  // namespace pathlog
