// Crash-safe durability: WAL framing and scan, snapshot + WAL
// recovery through Database::Open, and the torture test — a scripted
// workload crashed at *every* write-syscall boundary, after which the
// recovered database must answer a reference query set identically to
// a run that never crashed.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/crc32.h"
#include "query/database.h"
#include "store/file_ops.h"
#include "store/wal.h"

namespace pathlog {
namespace {

using FaultKind = FaultInjectingFileOps::FaultKind;

TEST(Crc32Test, KnownVectors) {
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  // Seeding chains incrementally computed checksums.
  EXPECT_EQ(Crc32("456789", Crc32("123")), Crc32("123456789"));
}

std::string FreshWal() { return std::string(kWalMagic, kWalMagicLen); }

TEST(WalTest, EmptyLogScansToNothing) {
  Result<WalScan> scan = ScanWal(FreshWal());
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_TRUE(scan->records.empty());
  EXPECT_EQ(scan->valid_bytes, kWalMagicLen);
  EXPECT_FALSE(scan->torn);
}

TEST(WalTest, TruncatedMagicIsTornCreation) {
  Result<WalScan> scan = ScanWal("PLGW");
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_TRUE(scan->torn);
  EXPECT_EQ(scan->valid_bytes, 0u);
}

TEST(WalTest, WrongMagicRejected) {
  EXPECT_EQ(ScanWal("NOTAWAL!").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WalTest, RecordsRoundTrip) {
  std::string wal = FreshWal();
  AppendWalFrame(&wal, EncodeWalIntern(7, ObjectKind::kSymbol, 0, "mary"));
  AppendWalFrame(&wal, EncodeWalIntern(8, ObjectKind::kInt, -42, ""));
  AppendWalFrame(&wal, EncodeWalIntern(9, ObjectKind::kString, 0, "a\"b"));
  Fact f;
  f.kind = FactKind::kScalar;
  f.method = 3;
  f.recv = 7;
  f.args = {8, 9};
  f.value = 8;
  AppendWalFrame(&wal, EncodeWalFact(11, f));
  AppendWalFrame(&wal, EncodeWalProgram("X[a->1] <- X[b->1].\n"));
  AppendWalFrame(&wal, EncodeWalTriggerWatermark(12));

  Result<WalScan> scan = ScanWal(wal);
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_FALSE(scan->torn);
  EXPECT_EQ(scan->valid_bytes, wal.size());
  ASSERT_EQ(scan->records.size(), 6u);

  EXPECT_EQ(scan->records[0].type, WalRecordType::kIntern);
  EXPECT_EQ(scan->records[0].oid, 7u);
  EXPECT_EQ(scan->records[0].obj_kind, ObjectKind::kSymbol);
  EXPECT_EQ(scan->records[0].text, "mary");
  EXPECT_EQ(scan->records[1].obj_kind, ObjectKind::kInt);
  EXPECT_EQ(scan->records[1].int_value, -42);
  EXPECT_EQ(scan->records[2].text, "a\"b");
  EXPECT_EQ(scan->records[3].type, WalRecordType::kFact);
  EXPECT_EQ(scan->records[3].gen, 11u);
  EXPECT_EQ(scan->records[3].fact, f);
  EXPECT_EQ(scan->records[4].type, WalRecordType::kProgram);
  EXPECT_EQ(scan->records[4].text, "X[a->1] <- X[b->1].\n");
  EXPECT_EQ(scan->records[5].type, WalRecordType::kTriggerWatermark);
  EXPECT_EQ(scan->records[5].watermark, 12u);
}

TEST(WalTest, TornTailAtEveryCutIsTruncatedNotFatal) {
  std::string wal = FreshWal();
  AppendWalFrame(&wal, EncodeWalIntern(4, ObjectKind::kSymbol, 0, "a"));
  const size_t one_frame = wal.size();
  AppendWalFrame(&wal, EncodeWalIntern(5, ObjectKind::kSymbol, 0, "bb"));

  // Cut anywhere inside the second frame: the scan keeps the first
  // record and reports the cut as a torn tail at the frame boundary.
  for (size_t cut = one_frame; cut < wal.size(); ++cut) {
    Result<WalScan> scan = ScanWal(std::string_view(wal).substr(0, cut));
    ASSERT_TRUE(scan.ok()) << "cut=" << cut << ": " << scan.status();
    EXPECT_EQ(scan->records.size(), 1u) << cut;
    EXPECT_EQ(scan->valid_bytes, one_frame) << cut;
    EXPECT_EQ(scan->torn, cut != one_frame) << cut;
  }
}

TEST(WalTest, BitFlipAtEveryOffsetNeverCrashesTheScan) {
  std::string wal = FreshWal();
  AppendWalFrame(&wal, EncodeWalIntern(4, ObjectKind::kSymbol, 0, "abc"));
  Fact f;
  f.kind = FactKind::kIsa;
  f.method = 1;
  f.recv = 4;
  f.value = 2;
  AppendWalFrame(&wal, EncodeWalFact(0, f));

  for (size_t i = 0; i < wal.size(); ++i) {
    for (uint8_t bit : {0x01, 0x80}) {
      std::string bad = wal;
      bad[i] = static_cast<char>(bad[i] ^ bit);
      Result<WalScan> scan = ScanWal(bad);  // any outcome but a crash
      if (scan.ok()) {
        // A flip the CRC caught truncates; one in the length field may
        // also look torn. Either way the prefix stays well-formed.
        EXPECT_LE(scan->valid_bytes, bad.size()) << i;
      }
    }
  }
}

TEST(WalTest, CrcValidButMalformedPayloadIsCorruption) {
  std::string wal = FreshWal();
  AppendWalFrame(&wal, std::string("\xEE junk type", 12));
  EXPECT_EQ(ScanWal(wal).status().code(), StatusCode::kInvalidArgument);
}

TEST(WalTest, ReplayIsIdempotentOverAnOverlappingStore) {
  ObjectStore store;
  Oid a = store.InternSymbol("a");
  Oid b = store.InternSymbol("b");
  ASSERT_TRUE(store.AddIsa(a, b).ok());

  // Records the store already contains: verified and skipped.
  WalRecord intern;
  intern.type = WalRecordType::kIntern;
  intern.oid = a;
  intern.obj_kind = ObjectKind::kSymbol;
  intern.text = "a";
  EXPECT_TRUE(ApplyWalRecordToStore(intern, &store).ok());

  WalRecord fact;
  fact.type = WalRecordType::kFact;
  fact.gen = 0;
  fact.fact = store.FactAt(0);
  EXPECT_TRUE(ApplyWalRecordToStore(fact, &store).ok());
  EXPECT_EQ(store.generation(), 1u);

  // A mismatching record at an existing position is corruption.
  fact.fact.recv = b;
  EXPECT_EQ(ApplyWalRecordToStore(fact, &store).code(),
            StatusCode::kInvalidArgument);

  // An oid gap is corruption (interns replay densely).
  intern.oid = 99;
  intern.text = "zz";
  EXPECT_EQ(ApplyWalRecordToStore(intern, &store).code(),
            StatusCode::kInvalidArgument);
}

// --- Database::Open ---------------------------------------------------

DatabaseOptions DurableOptions(uint64_t checkpoint_every = 0) {
  DatabaseOptions opts;
  opts.durability.checkpoint_every = checkpoint_every;
  return opts;
}

TEST(DurableDatabaseTest, MutationsSurviveReopen) {
  FaultInjectingFileOps fs;
  {
    Result<Database> db = Database::Open("/db", DurableOptions(), &fs);
    ASSERT_TRUE(db.ok()) << db.status();
    EXPECT_TRUE(db->durable());
    ASSERT_TRUE(db->Load(R"(
      person[age => integer].
      ann : person[age->33; kids->>{bob}].
      X[desc->>{Y}] <- X[kids->>{Y}].
      X[desc->>{Z}] <- X[kids->>{Y}], Y[desc->>{Z}].
    )").ok());
    ASSERT_TRUE(db->Materialize().ok());
  }  // no snapshot, no explicit close: the WAL alone must recover this

  Result<Database> db = Database::Open("/db", DurableOptions(), &fs);
  ASSERT_TRUE(db.ok()) << db.status();
  Result<bool> holds = db->Holds("ann[desc->>{bob}]");
  ASSERT_TRUE(holds.ok()) << holds.status();
  EXPECT_TRUE(*holds);
  EXPECT_EQ(db->num_rules(), 2u);
  // Rules replay as live rules, not just facts.
  ASSERT_TRUE(db->Load("bob[kids->>{cleo}].").ok());
  Result<bool> deep = db->Holds("ann[desc->>{cleo}]");
  ASSERT_TRUE(deep.ok());
  EXPECT_TRUE(*deep);
  // Signatures replay too.
  ASSERT_TRUE(db->Load("dan : person[age->old].").ok());
  std::vector<TypeViolation> v;
  ASSERT_TRUE(db->TypeCheck(&v).ok());
  EXPECT_EQ(v.size(), 1u);
}

TEST(DurableDatabaseTest, WalReplayRebuildsMethodStatistics) {
  // The planner's per-method statistics are maintained incrementally
  // by the store mutators and never logged; WAL recovery replays the
  // mutators, so a recovered database must reproduce them exactly —
  // counters, heavy-hitter lists, and generation stamps alike.
  FaultInjectingFileOps fs;
  std::string program = "hub[site->metro].\n";
  for (int i = 0; i < 30; ++i) {
    const std::string i_str = std::to_string(i);
    program += "m" + i_str + "[city->metro].\n";
    program += "m" + i_str + "[likes->>{metro}].\n";
  }
  program += "outlier[city->village].\noutlier[likes->>{village}].\n";

  std::vector<std::pair<Oid, MethodStats>> scalar_stats, set_stats;
  {
    Result<Database> db = Database::Open("/db", DurableOptions(), &fs);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->Load(program).ok());
    for (Oid m : db->store().ScalarMethods()) {
      scalar_stats.emplace_back(m, db->store().ScalarValueStats(m));
    }
    for (Oid m : db->store().SetMethods()) {
      set_stats.emplace_back(m, db->store().SetMemberStats(m));
    }
  }  // no snapshot: recovery is pure WAL replay

  Result<Database> db = Database::Open("/db", DurableOptions(), &fs);
  ASSERT_TRUE(db.ok()) << db.status();
  for (const auto& [m, stats] : scalar_stats) {
    EXPECT_TRUE(db->store().ScalarValueStats(m) == stats)
        << "scalar stats diverge for " << db->store().DisplayName(m);
  }
  for (const auto& [m, stats] : set_stats) {
    EXPECT_TRUE(db->store().SetMemberStats(m) == stats)
        << "set stats diverge for " << db->store().DisplayName(m);
  }
  // The skew is really there: the recovered planner ranks the hot
  // bucket above the average (31 entries / 2 values would say ~15).
  std::optional<Oid> city = db->store().FindSymbol("city");
  ASSERT_TRUE(city.has_value());
  EXPECT_DOUBLE_EQ(SkewAwareBucketEstimate(db->store().ScalarValueStats(*city)),
                   30.0);
}

TEST(DurableDatabaseTest, QueryTimeInterningIsLogged) {
  // A query can grow the universe (it interns names no fact mentions);
  // recovery replays oids densely, so that growth must hit the WAL or
  // the next commit's intern records would arrive with a gap.
  FaultInjectingFileOps fs;
  {
    Result<Database> db = Database::Open("/db", DurableOptions(), &fs);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->Load("a[m->1].").ok());
    Result<bool> h = db->Holds("zebra[never->asserted]");
    ASSERT_TRUE(h.ok());
    EXPECT_FALSE(*h);
    ASSERT_TRUE(db->Load("zebra[m->2].").ok());
  }
  Result<Database> db = Database::Open("/db", DurableOptions(), &fs);
  ASSERT_TRUE(db.ok()) << db.status();
  Result<bool> h = db->Holds("zebra[m->2]");
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(*h);
}

TEST(DurableDatabaseTest, CheckpointResetsTheWalAndStateSurvives) {
  FaultInjectingFileOps fs;
  {
    Result<Database> db = Database::Open("/db", DurableOptions(), &fs);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->Load("mary[age->30]. mary[kids->>{ann, bob}].").ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    Result<std::string> wal = fs.ReadFile("/db/wal.plgwal");
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ(*wal, FreshWal());
    ASSERT_TRUE(db->Load("bob[age->4].").ok());
  }
  Result<Database> db = Database::Open("/db", DurableOptions(), &fs);
  ASSERT_TRUE(db.ok()) << db.status();
  for (const char* q : {"mary[age->30]", "mary[kids->>{ann}]",
                        "bob[age->4]"}) {
    Result<bool> h = db->Holds(q);
    ASSERT_TRUE(h.ok()) << q;
    EXPECT_TRUE(*h) << q;
  }
}

TEST(DurableDatabaseTest, AutoCheckpointTriggersByRecordCount) {
  FaultInjectingFileOps fs;
  Result<Database> db = Database::Open("/db", DurableOptions(4), &fs);
  ASSERT_TRUE(db.ok()) << db.status();
  for (int i = 0; i < 10; ++i) {
    const std::string i_str = std::to_string(i);
    ASSERT_TRUE(db->Load("p" + i_str + "[v->" + i_str + "].").ok());
  }
  // Enough commits ran that at least one auto-checkpoint must have
  // fired: the WAL holds fewer records than the workload produced.
  Result<std::string> wal = fs.ReadFile("/db/wal.plgwal");
  ASSERT_TRUE(wal.ok());
  Result<WalScan> scan = ScanWal(*wal);
  ASSERT_TRUE(scan.ok());
  EXPECT_LT(scan->records.size(), 20u);
  Result<std::string> snap = fs.ReadFile("/db/snapshot.plgdb");
  EXPECT_TRUE(snap.ok()) << "auto-checkpoint never wrote a snapshot";
}

TEST(DurableDatabaseTest, WalWriteErrorLatchesUntilCheckpoint) {
  FaultInjectingFileOps fs;
  Result<Database> db = Database::Open("/db", DurableOptions(), &fs);
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE(db->Load("a[m->1].").ok());

  fs.ArmFault(FaultKind::kFail, 1);
  // The legacy armed fault reports kInternal — a persistent failure,
  // so the database degrades to read-only immediately (no retries).
  EXPECT_FALSE(db->Load("b[m->2].").ok());
  EXPECT_TRUE(db->degraded());
  // While degraded, mutations fail fast with kUnavailable *before*
  // touching the store: c never lands, even in memory.
  Status c_st = db->Load("c[m->3].");
  EXPECT_EQ(c_st.code(), StatusCode::kUnavailable) << c_st.ToString();
  // Queries keep serving the last consistent state.
  Result<bool> a_holds = db->Holds("a[m->1]");
  ASSERT_TRUE(a_holds.ok());
  EXPECT_TRUE(*a_holds);
  // ...until a checkpoint rebuilds the log from scratch and restores
  // read-write service.
  ASSERT_TRUE(db->Checkpoint().ok());
  EXPECT_FALSE(db->degraded());
  EXPECT_TRUE(db->Load("d[m->4].").ok());
  EXPECT_EQ(db->Health().degraded_entries, 1u);

  Result<Database> reopened = Database::Open("/db", DurableOptions(), &fs);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  // b reached the store before its commit failed; the checkpoint
  // persisted the store wholesale, so it survives. c was rejected by
  // the degraded gate and must NOT resurface.
  for (const char* q : {"a[m->1]", "b[m->2]", "d[m->4]"}) {
    Result<bool> h = reopened->Holds(q);
    ASSERT_TRUE(h.ok()) << q;
    EXPECT_TRUE(*h) << q;
  }
  Result<bool> c_holds = reopened->Holds("c[m->3]");
  ASSERT_TRUE(c_holds.ok());
  EXPECT_FALSE(*c_holds);
}

TEST(DurableDatabaseTest, CorruptWalIsReportedNotReplayed) {
  FaultInjectingFileOps fs;
  {
    Result<Database> db = Database::Open("/db", DurableOptions(), &fs);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->Load("a[m->1].").ok());
  }
  // Flip a byte mid-log *and* fix nothing: the CRC stops the scan at
  // the flip (torn tail), so recovery still succeeds with a prefix.
  Result<std::string> wal = fs.ReadFile("/db/wal.plgwal");
  ASSERT_TRUE(wal.ok());
  std::string bad = *wal;
  bad[bad.size() - 3] ^= 0x40;
  ASSERT_TRUE(fs.Truncate("/db/wal.plgwal", 0).ok());
  {
    Result<std::unique_ptr<FileOps::WritableFile>> f =
        fs.OpenForWrite("/db/wal.plgwal", true);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(bad).ok());
    ASSERT_TRUE((*f)->Sync().ok());
  }
  Result<Database> db = Database::Open("/db", DurableOptions(), &fs);
  ASSERT_TRUE(db.ok()) << db.status();  // prefix recovery, not failure
}

// --- The torture test -------------------------------------------------

/// One step of the scripted workload. Every step must be idempotent
/// under re-application (facts dedupe, rules dedupe by printed form),
/// because recovery re-runs the failed step and everything after it.
struct TortureStep {
  enum Kind { kLoad, kQuery, kFire, kCheckpoint } kind;
  std::string text;
};

std::vector<TortureStep> TortureWorkload() {
  return {
      {TortureStep::kLoad, R"(
        emp[salary => integer].
        mary : emp[salary->50; dept->cs; kids->>{ann}].
        john : emp[salary->60; dept->cs].
        X[colleagues->>{Y}] <- X[dept->D], Y:emp[dept->D].
      )"},
      {TortureStep::kQuery, "?- mary[colleagues->>{X}]."},
      {TortureStep::kLoad, "sue : emp[salary->70; dept->ee]."},
      {TortureStep::kLoad,
       "audit[saw->>{X}] <~ X:emp[salary->S], S.geq@(60)."},
      {TortureStep::kFire, ""},
      {TortureStep::kCheckpoint, ""},
      {TortureStep::kLoad, "bob : emp[salary->80; dept->ee].\n"
                           "X.boss[dept->D] <- X:emp[dept->D]."},
      {TortureStep::kFire, ""},
      {TortureStep::kQuery, "?- X:emp[salary->S]."},
      {TortureStep::kLoad, "ann : emp[salary->90; dept->cs]."},
  };
}

const char* const kReferenceQueries[] = {
    "?- X:emp[salary->S].",
    "?- mary[colleagues->>{X}].",
    "?- audit[saw->>{X}].",
    "?- X.boss[dept->D].",
    "?- mary[kids->>{K}].",
};

Status RunStep(Database* db, const TortureStep& step) {
  switch (step.kind) {
    case TortureStep::kLoad:
      return db->Load(step.text);
    case TortureStep::kQuery:
      return db->Query(step.text).status();
    case TortureStep::kFire:
      return db->FireTriggers();
    case TortureStep::kCheckpoint:
      return db->Checkpoint();
  }
  return Status::OK();
}

/// Answers to the reference queries, rendered with display names so
/// two databases with different oid assignments compare equal.
std::vector<std::string> ReferenceAnswers(Database* db) {
  std::vector<std::string> out;
  for (const char* q : kReferenceQueries) {
    Result<ResultSet> rs = db->Query(q);
    EXPECT_TRUE(rs.ok()) << q << ": " << rs.status();
    out.push_back(rs.ok() ? rs->ToString(db->store()) : "<error>");
  }
  return out;
}

TEST(DurabilityTortureTest, CrashAtEveryWriteBoundaryRecoversExactly) {
  const std::vector<TortureStep> steps = TortureWorkload();
  // checkpoint_every exercises the checkpoint crash window mid-run.
  const DatabaseOptions opts = DurableOptions(/*checkpoint_every=*/6);

  // Un-faulted reference run: learn the write-op count and the answers.
  std::vector<std::string> expected;
  uint64_t total_ops = 0;
  {
    FaultInjectingFileOps fs;
    Result<Database> db = Database::Open("/db", opts, &fs);
    ASSERT_TRUE(db.ok()) << db.status();
    for (const TortureStep& step : steps) {
      ASSERT_TRUE(RunStep(&*db, step).ok());
    }
    expected = ReferenceAnswers(&*db);
    total_ops = fs.WriteOpCount();
  }
  ASSERT_GT(total_ops, 20u);

  for (uint64_t nth = 1; nth <= total_ops; ++nth) {
    SCOPED_TRACE("crash at write op " + std::to_string(nth));
    FaultInjectingFileOps fs;
    fs.ArmFault(FaultKind::kCrash, nth);

    // The workload driver: on a crash, "restart the process" — drop
    // the Database, tear the unsynced tails, reopen, and re-apply the
    // failed step and everything after it. Steps are idempotent, so
    // re-application after a partially persisted commit is safe.
    std::optional<Database> db;
    auto reopen = [&]() {
      for (int attempt = 0; attempt < 3; ++attempt) {
        Result<Database> opened = Database::Open("/db", opts, &fs);
        if (opened.ok()) {
          db.emplace(std::move(*opened));
          return true;
        }
        if (!fs.crashed()) {
          ADD_FAILURE() << "recovery failed: " << opened.status();
          return false;
        }
        fs.RecoverAfterCrash();  // crash landed inside recovery itself
      }
      ADD_FAILURE() << "recovery never converged";
      return false;
    };
    ASSERT_TRUE(reopen());

    size_t i = 0;
    while (i < steps.size()) {
      Status st = RunStep(&*db, steps[i]);
      if (st.ok()) {
        ++i;
        continue;
      }
      ASSERT_TRUE(fs.crashed()) << "non-crash failure at step " << i
                                << ": " << st.ToString();
      db.reset();
      fs.RecoverAfterCrash();
      ASSERT_TRUE(reopen());
      // Re-apply the failed step: the crash may have persisted any
      // prefix of it, including all of it.
    }
    // If the crash never fired (this run took fewer ops than the
    // reference), don't let it land inside the verification queries.
    fs.ArmFault(FaultKind::kNone, 0);
    EXPECT_EQ(ReferenceAnswers(&*db), expected);

    // And the final state must survive one more clean reopen.
    db.reset();
    Result<Database> final_db = Database::Open("/db", opts, &fs);
    ASSERT_TRUE(final_db.ok()) << final_db.status();
    EXPECT_EQ(ReferenceAnswers(&*final_db), expected);
  }
}

TEST(DurabilityTortureTest, ShortWriteAtEveryBoundaryIsRecoverable) {
  const std::vector<TortureStep> steps = TortureWorkload();
  const DatabaseOptions opts = DurableOptions();

  std::vector<std::string> expected;
  uint64_t total_ops = 0;
  {
    FaultInjectingFileOps fs;
    Result<Database> db = Database::Open("/db", opts, &fs);
    ASSERT_TRUE(db.ok()) << db.status();
    for (const TortureStep& step : steps) {
      ASSERT_TRUE(RunStep(&*db, step).ok());
    }
    expected = ReferenceAnswers(&*db);
    total_ops = fs.WriteOpCount();
  }

  for (uint64_t nth = 1; nth <= total_ops; ++nth) {
    SCOPED_TRACE("short write at op " + std::to_string(nth));
    FaultInjectingFileOps fs;
    fs.ArmFault(FaultKind::kShortWrite, nth);
    Result<Database> db = Database::Open("/db", opts, &fs);
    if (!db.ok()) {
      // The fault hit recovery's own writes; with no crash the fs
      // keeps working, so a second open must succeed.
      db = Database::Open("/db", opts, &fs);
      ASSERT_TRUE(db.ok()) << db.status();
    }
    size_t i = 0;
    while (i < steps.size()) {
      Status st = RunStep(&*db, steps[i]);
      if (st.ok()) {
        ++i;
        continue;
      }
      // A short write latches the WAL; Checkpoint is the documented
      // way back. The store kept the step's effects, so continue with
      // the next step after the rebuild.
      ASSERT_TRUE(db->Checkpoint().ok()) << "at step " << i;
      ++i;
    }
    fs.ArmFault(FaultKind::kNone, 0);
    EXPECT_EQ(ReferenceAnswers(&*db), expected);
  }
}

TEST(DurableDatabaseTest, FsyncNeverLosesOnlyTheUnsyncedTail) {
  FaultInjectingFileOps fs;
  DatabaseOptions opts;
  opts.durability.fsync_policy = DurabilityOptions::FsyncPolicy::kNever;
  {
    Result<Database> db = Database::Open("/db", opts, &fs);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->Load("a[m->1]. b[m->2]. c[m->3].").ok());
  }
  // Simulate a crash with nothing armed: every unsynced byte is at the
  // OS's mercy and half of each tail is torn away.
  fs.ArmFault(FaultKind::kCrash, 1);
  (void)fs.Remove("/nonexistent");  // any write op fires the crash
  ASSERT_TRUE(fs.crashed());
  fs.RecoverAfterCrash();

  // Recovery must still succeed — on whatever prefix reached "disk".
  Result<Database> db = Database::Open("/db", opts, &fs);
  ASSERT_TRUE(db.ok()) << db.status();
}

TEST(DurableDatabaseTest, StaleTempFilesAreSweptOnOpen) {
  // A crash between writing snapshot.plgdb.tmp and renaming it leaves
  // the temp file behind. Open must sweep every *.tmp in the database
  // directory — and nothing else.
  FaultInjectingFileOps fs;
  {
    Result<Database> db = Database::Open("/db", DurableOptions(), &fs);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->Load("a[m->1].").ok());
  }
  for (const char* path : {"/db/snapshot.plgdb.tmp", "/db/other.tmp"}) {
    Result<std::unique_ptr<FileOps::WritableFile>> f =
        fs.OpenForWrite(path, /*truncate=*/true);
    ASSERT_TRUE(f.ok()) << f.status();
    ASSERT_TRUE((*f)->Append("stale garbage").ok());
    ASSERT_TRUE((*f)->Sync().ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  {
    Result<std::unique_ptr<FileOps::WritableFile>> f =
        fs.OpenForWrite("/db/keep.dat", /*truncate=*/true);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append("not a temp file").ok());
    ASSERT_TRUE((*f)->Close().ok());
  }

  Result<Database> db = Database::Open("/db", DurableOptions(), &fs);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_FALSE(fs.Exists("/db/snapshot.plgdb.tmp"));
  EXPECT_FALSE(fs.Exists("/db/other.tmp"));
  EXPECT_TRUE(fs.Exists("/db/keep.dat")) << "the sweep is *.tmp only";
  Result<bool> holds = db->Holds("a[m->1]");
  ASSERT_TRUE(holds.ok());
  EXPECT_TRUE(*holds);
}

TEST(DurableDatabaseTest, TriggerDeadlineLeavesARecoverableConsistentState) {
  // A wall deadline lapses mid-trigger-cascade in a durable session.
  // The failed round must not advance the watermark past anything
  // uncommitted: after a reopen (deadline-free), re-firing completes
  // to exactly the state a never-interrupted run reaches.
  FaultInjectingFileOps fs;
  constexpr std::string_view kCascade = R"(
    X[lvl2->1] <~ X[lvl1->1].
    X[lvl3->1] <~ X[lvl2->1].
    X[lvl4->1] <~ X[lvl3->1].
    seed[lvl1->1].
  )";
  {
    uint64_t now = 0;
    DatabaseOptions opts = DurableOptions();
    opts.triggers.max_wall_ms = 50;
    opts.triggers.wall_clock = [&now] {
      now += 30;
      return now;
    };
    Result<Database> db = Database::Open("/db", opts, &fs);
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(db->Load(std::string(kCascade)).ok());
    Status st = db->FireTriggers();
    ASSERT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st;
    EXPECT_NE(st.message().find("during trigger round"), std::string::npos)
        << st;
  }

  Result<Database> db = Database::Open("/db", DurableOptions(), &fs);
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE(db->FireTriggers().ok());

  Database oracle;
  ASSERT_TRUE(oracle.Load(std::string(kCascade)).ok());
  ASSERT_TRUE(oracle.FireTriggers().ok());
  EXPECT_EQ(db->store().FactCount(), oracle.store().FactCount());
  for (const char* ref : {"seed[lvl2->1]", "seed[lvl3->1]",
                          "seed[lvl4->1]"}) {
    Result<bool> got = db->Holds(ref);
    ASSERT_TRUE(got.ok()) << ref;
    EXPECT_TRUE(*got) << ref;
  }
}

}  // namespace
}  // namespace pathlog
