// Deterministic chaos harness for the durability layer. Every test is
// a scripted fault schedule (FaultInjectingFileOps::FaultSchedule)
// driving a durable database through mutations, queries, checkpoints
// and reopens, with three invariants checked throughout:
//
//   1. answers stay consistent with a from-scratch re-materialisation
//      of the successfully applied programs (the oracle);
//   2. a reopen recovers after *every* schedule;
//   3. degraded read-only mode is entered and exited exactly when the
//      schedule says it must be — transient faults retry and clear,
//      persistent ones degrade immediately, and the next successful
//      checkpoint restores read-write service.
//
// No real sleeps: retry backoff goes through an injected recorder, so
// the exponential schedule itself is asserted.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "base/budget.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "query/database.h"
#include "store/file_ops.h"

namespace pathlog {
namespace {

using FaultKind = FaultInjectingFileOps::FaultKind;
using FaultOp = FaultInjectingFileOps::FaultOp;
using FaultEvent = FaultInjectingFileOps::FaultEvent;
using FaultSchedule = FaultInjectingFileOps::FaultSchedule;

/// A durable database under test plus the book-keeping the invariants
/// need: the programs that were successfully applied (the oracle
/// input) and a recorder for retry backoff sleeps.
struct ChaosRig {
  FaultInjectingFileOps fs;
  std::vector<uint64_t> sleeps;
  DatabaseOptions opts;
  std::vector<std::string> applied;

  ChaosRig() {
    opts.durability.initial_backoff_ms = 1;
    opts.durability.max_backoff_ms = 64;
    opts.durability.backoff_sleep = [this](uint64_t ms) {
      sleeps.push_back(ms);
    };
  }

  Result<Database> Open() { return Database::Open("/db", opts, &fs); }

  /// One scripted fault event starting at the next matching op.
  void Inject(FaultOp op, uint64_t at, uint64_t count, FaultKind kind,
              StatusCode code = StatusCode::kUnavailable) {
    FaultSchedule s;
    s.events.push_back(FaultEvent{op, at, count, kind, code});
    fs.SetSchedule(s);
  }
  void ClearFaults() { fs.SetSchedule(FaultSchedule{}); }
};

/// The oracle: a fresh in-memory database materialised from scratch
/// over the applied programs must give the same answers as the durable
/// database that lived through the schedule.
void ExpectMatchesOracle(Database& db, const std::vector<std::string>& applied,
                         const std::vector<std::string>& refs) {
  Database oracle;
  for (const std::string& p : applied) {
    ASSERT_TRUE(oracle.Load(p).ok()) << p;
  }
  for (const std::string& ref : refs) {
    Result<bool> want = oracle.Holds(ref);
    ASSERT_TRUE(want.ok()) << ref << ": " << want.status();
    Result<bool> got = db.Holds(ref);
    ASSERT_TRUE(got.ok()) << ref << ": " << got.status();
    EXPECT_EQ(*got, *want) << ref;
  }
}

TEST(ChaosTest, TransientFsyncEioRetriesAndClears) {
  // Schedule: the next fsync fails once with a transient code. The
  // commit must retry (truncate + re-append + fsync) and succeed; the
  // database never degrades and the retry is counted.
  ChaosRig rig;
  Result<Database> db = rig.Open();
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE(db->Load("a[v->1].").ok());
  rig.applied.push_back("a[v->1].");

  rig.Inject(FaultOp::kSync, 1, 1, FaultKind::kFail);
  Status st = db->Load("b[v->2].");
  EXPECT_TRUE(st.ok()) << st;
  rig.applied.push_back("b[v->2].");

  EXPECT_FALSE(db->degraded());
  EXPECT_EQ(db->Health().wal_retries, 1u);
  EXPECT_EQ(db->Health().degraded_entries, 0u);
  EXPECT_EQ(rig.sleeps, (std::vector<uint64_t>{1}));

  rig.ClearFaults();
  db = rig.Open();  // reopen recovers both commits
  ASSERT_TRUE(db.ok()) << db.status();
  ExpectMatchesOracle(*db, rig.applied, {"a[v->1]", "b[v->2]"});
}

TEST(ChaosTest, TransientAppendEioRetriesAndClears) {
  ChaosRig rig;
  Result<Database> db = rig.Open();
  ASSERT_TRUE(db.ok()) << db.status();

  rig.Inject(FaultOp::kAppend, 1, 1, FaultKind::kFail);
  ASSERT_TRUE(db->Load("a[v->1].").ok());
  rig.applied.push_back("a[v->1].");

  EXPECT_FALSE(db->degraded());
  EXPECT_EQ(db->Health().wal_retries, 1u);

  rig.ClearFaults();
  db = rig.Open();
  ASSERT_TRUE(db.ok()) << db.status();
  ExpectMatchesOracle(*db, rig.applied, {"a[v->1]"});
}

TEST(ChaosTest, TransientShortWriteMidBatchIsRepairedByTruncation) {
  // A short write tears the *middle* of a commit's batch: the retry
  // must truncate back to the last known-good length and re-append the
  // whole batch, or the log would carry a torn frame mid-file.
  ChaosRig rig;
  Result<Database> db = rig.Open();
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE(db->Load("a[v->1].").ok());
  rig.applied.push_back("a[v->1].");

  rig.Inject(FaultOp::kAppend, 2, 1, FaultKind::kShortWrite);
  ASSERT_TRUE(db->Load("b[v->2]. c[v->3].").ok());
  rig.applied.push_back("b[v->2]. c[v->3].");
  EXPECT_FALSE(db->degraded());
  EXPECT_EQ(db->Health().wal_retries, 1u);

  rig.ClearFaults();
  db = rig.Open();
  ASSERT_TRUE(db.ok()) << db.status();
  ExpectMatchesOracle(*db, rig.applied,
                      {"a[v->1]", "b[v->2]", "c[v->3]", "a[v->2]"});
}

TEST(ChaosTest, TwoTransientsInOneCommitStillLandReadWrite) {
  ChaosRig rig;
  Result<Database> db = rig.Open();
  ASSERT_TRUE(db.ok()) << db.status();

  rig.Inject(FaultOp::kSync, 1, 2, FaultKind::kFail);  // two fsyncs fail
  ASSERT_TRUE(db->Load("a[v->1].").ok());
  rig.applied.push_back("a[v->1].");

  EXPECT_FALSE(db->degraded());
  EXPECT_EQ(db->Health().wal_retries, 2u);
  EXPECT_EQ(rig.sleeps, (std::vector<uint64_t>{1, 2}));

  rig.ClearFaults();
  db = rig.Open();
  ASSERT_TRUE(db.ok()) << db.status();
  ExpectMatchesOracle(*db, rig.applied, {"a[v->1]"});
}

TEST(ChaosTest, EnospcWindowExhaustsRetriesDegradesThenRecovers) {
  // An ENOSPC window longer than the retry budget: every write-side op
  // fails transiently. The commit burns all four retries with the full
  // exponential backoff schedule, then enters degraded read-only mode.
  // When space returns, a checkpoint restores read-write service and
  // makes the stranded in-memory mutation durable.
  ChaosRig rig;
  Result<Database> db = rig.Open();
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE(db->Load("a[v->1].").ok());
  rig.applied.push_back("a[v->1].");

  rig.Inject(FaultOp::kAny, 1, 200, FaultKind::kFail);  // the full window
  Status st = db->Load("b[v->2].");
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st;
  EXPECT_TRUE(db->degraded());
  DatabaseHealth h = db->Health();
  EXPECT_EQ(h.wal_retries, 4u);
  EXPECT_EQ(h.degraded_entries, 1u);
  EXPECT_NE(h.degraded_cause, "");
  EXPECT_EQ(rig.sleeps, (std::vector<uint64_t>{1, 2, 4, 8}));

  // Degraded service: queries keep answering from the last consistent
  // in-memory state (which includes b), mutations fail fast.
  Result<bool> holds = db->Holds("a[v->1]");
  ASSERT_TRUE(holds.ok()) << holds.status();
  EXPECT_TRUE(*holds);
  EXPECT_EQ(db->Load("c[v->3].").code(), StatusCode::kUnavailable);

  // Space returns: the checkpoint probe succeeds and re-enables writes.
  rig.ClearFaults();
  ASSERT_TRUE(db->Checkpoint().ok());
  EXPECT_FALSE(db->degraded());
  rig.applied.push_back("b[v->2].");  // snapshotted from memory
  ASSERT_TRUE(db->Load("d[v->4].").ok());
  rig.applied.push_back("d[v->4].");

  db = rig.Open();
  ASSERT_TRUE(db.ok()) << db.status();
  ExpectMatchesOracle(*db, rig.applied,
                      {"a[v->1]", "b[v->2]", "c[v->3]", "d[v->4]"});
}

TEST(ChaosTest, PersistentAppendFailureDegradesImmediately) {
  // A persistent failure (kInternal — the device is gone) must not be
  // retried: one failed append, zero retries, straight to degraded.
  ChaosRig rig;
  Result<Database> db = rig.Open();
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE(db->Load("a[v->1].").ok());
  rig.applied.push_back("a[v->1].");

  rig.Inject(FaultOp::kAppend, 1, 1, FaultKind::kFail,
             StatusCode::kInternal);
  EXPECT_EQ(db->Load("b[v->2].").code(), StatusCode::kUnavailable);
  EXPECT_TRUE(db->degraded());
  EXPECT_EQ(db->Health().wal_retries, 0u);
  EXPECT_EQ(db->Health().degraded_entries, 1u);
  EXPECT_TRUE(rig.sleeps.empty()) << "persistent failures never back off";

  // Queries serve; mutations fail fast with kUnavailable.
  Result<bool> holds = db->Holds("a[v->1]");
  ASSERT_TRUE(holds.ok()) << holds.status();
  EXPECT_TRUE(*holds);
  EXPECT_EQ(db->Materialize().code(), StatusCode::kUnavailable);
  EXPECT_EQ(db->FireTriggers().code(), StatusCode::kUnavailable);

  rig.ClearFaults();
  ASSERT_TRUE(db->Checkpoint().ok());
  EXPECT_FALSE(db->degraded());
  rig.applied.push_back("b[v->2].");
  ASSERT_TRUE(db->Load("c[v->3].").ok());
  rig.applied.push_back("c[v->3].");

  db = rig.Open();
  ASSERT_TRUE(db.ok()) << db.status();
  ExpectMatchesOracle(*db, rig.applied, {"a[v->1]", "b[v->2]", "c[v->3]"});
}

TEST(ChaosTest, PersistentFsyncOnlyFailureDegradesAndCheckpointHeals) {
  // Appends succeed but fsync is persistently broken: data reaches the
  // page cache, durability cannot be promised, so the database must
  // degrade rather than acknowledge commits it cannot keep.
  ChaosRig rig;
  Result<Database> db = rig.Open();
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE(db->Load("a[v->1].").ok());
  rig.applied.push_back("a[v->1].");

  rig.Inject(FaultOp::kSync, 1, 1, FaultKind::kFail, StatusCode::kInternal);
  EXPECT_EQ(db->Load("b[v->2].").code(), StatusCode::kUnavailable);
  EXPECT_TRUE(db->degraded());
  EXPECT_EQ(db->Health().wal_retries, 0u);

  rig.ClearFaults();
  ASSERT_TRUE(db->Checkpoint().ok());
  EXPECT_FALSE(db->degraded());
  rig.applied.push_back("b[v->2].");

  db = rig.Open();
  ASSERT_TRUE(db.ok()) << db.status();
  ExpectMatchesOracle(*db, rig.applied, {"a[v->1]", "b[v->2]"});
}

TEST(ChaosTest, CrashMidCommitRecoversTheCommittedPrefix) {
  // A crash in the middle of a commit's append batch: after restart,
  // recovery must produce exactly the previously committed state — the
  // torn batch is truncated away, never half-applied.
  ChaosRig rig;
  Result<Database> db = rig.Open();
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE(db->Load("a[v->1].").ok());
  rig.applied.push_back("a[v->1].");

  rig.Inject(FaultOp::kAppend, 2, 1, FaultKind::kCrash);
  EXPECT_FALSE(db->Load("b[v->2]. c[v->3].").ok());
  EXPECT_TRUE(db->degraded()) << "the disk is gone: degraded is all "
                                 "that's left to serve";

  rig.fs.RecoverAfterCrash();
  rig.ClearFaults();
  db = rig.Open();
  ASSERT_TRUE(db.ok()) << db.status();
  ExpectMatchesOracle(*db, rig.applied, {"a[v->1]"});
  Result<bool> torn = db->Holds("b[v->2]");
  ASSERT_TRUE(torn.ok()) << torn.status();
  EXPECT_FALSE(*torn) << "the crashed batch must not be half-recovered";
}

TEST(ChaosTest, CheckpointRenameFaultFailsTheCheckpointNotTheDatabase) {
  // A fault in the snapshot's atomic-rename makes the *checkpoint*
  // fail, but the WAL is untouched: no degraded mode, and mutations
  // keep committing.
  ChaosRig rig;
  Result<Database> db = rig.Open();
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE(db->Load("a[v->1].").ok());
  rig.applied.push_back("a[v->1].");

  rig.Inject(FaultOp::kRename, 1, 1, FaultKind::kFail);
  EXPECT_FALSE(db->Checkpoint().ok());
  EXPECT_FALSE(db->degraded());
  EXPECT_EQ(db->Health().degraded_entries, 0u);

  ASSERT_TRUE(db->Load("b[v->2].").ok());
  rig.applied.push_back("b[v->2].");

  rig.ClearFaults();
  db = rig.Open();
  ASSERT_TRUE(db.ok()) << db.status();
  ExpectMatchesOracle(*db, rig.applied, {"a[v->1]", "b[v->2]"});
}

TEST(ChaosTest, TinyRotationThresholdRotatesEveryCommitAndStaysConsistent) {
  // rotate_wal_bytes far below one commit: every commit trips the
  // rotation check and auto-checkpoints. Recovery then comes from the
  // snapshot, and the rotation counter tracks the commits.
  ChaosRig rig;
  rig.opts.durability.rotate_wal_bytes = 1;
  Result<Database> db = rig.Open();
  ASSERT_TRUE(db.ok()) << db.status();
  for (int i = 0; i < 5; ++i) {
    const std::string i_str = std::to_string(i);
    const std::string program = "o" + i_str + "[v->" + i_str + "].";
    ASSERT_TRUE(db->Load(program).ok()) << i;
    rig.applied.push_back(program);
  }
  DatabaseHealth h = db->Health();
  EXPECT_EQ(h.wal_rotations, 5u);
  EXPECT_EQ(h.wal_records, 0u) << "every commit checkpointed the log away";

  db = rig.Open();
  ASSERT_TRUE(db.ok()) << db.status();
  ExpectMatchesOracle(*db, rig.applied,
                      {"o0[v->0]", "o4[v->4]", "o0[v->4]"});
  EXPECT_EQ(db->Health().wal_rotations, 0u) << "counters are per-instance";
}

TEST(ChaosTest, RulesAndDerivedFactsSurviveTheFaults) {
  // The schedule hits a commit that carries a *rule*; after recovery
  // the rule must still derive (including over facts loaded later).
  ChaosRig rig;
  Result<Database> db = rig.Open();
  ASSERT_TRUE(db.ok()) << db.status();

  rig.Inject(FaultOp::kSync, 1, 1, FaultKind::kFail);
  ASSERT_TRUE(db->Load("X[w->V] <- X[v->V]. a[v->1].").ok());
  rig.applied.push_back("X[w->V] <- X[v->V]. a[v->1].");
  EXPECT_EQ(db->Health().wal_retries, 1u);

  rig.ClearFaults();
  db = rig.Open();
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE(db->Load("b[v->2].").ok());
  rig.applied.push_back("b[v->2].");
  ExpectMatchesOracle(*db, rig.applied,
                      {"a[w->1]", "b[w->2]", "a[w->2]"});
}

// ---------------------------------------------------------------------------
// Flight-recorder incident dumps: a degrade must leave a black-box
// file in the durable dir that standard trace tooling can load.

/// Dump file names in the rig's durable dir ("flightrec-<ts>-<n>
/// .trace.json"), in listing order.
std::vector<std::string> FlightDumps(ChaosRig& rig) {
  Result<std::vector<std::string>> names = rig.fs.ListDir("/db");
  std::vector<std::string> dumps;
  if (!names.ok()) return dumps;
  for (const std::string& name : *names) {
    if (name.rfind("flightrec-", 0) == 0 &&
        name.size() > 11 &&
        name.compare(name.size() - 11, 11, ".trace.json") == 0) {
      dumps.push_back(name);
    }
  }
  return dumps;
}

TEST(ChaosTest, PersistentWalFaultLeavesAFlightRecorderDump) {
  // The acceptance criterion: a forced degrade (persistent WAL fault)
  // leaves a dump on disk that parses as valid trace JSON and whose
  // events include the failing WAL span and the degraded-mode entry.
  ChaosRig rig;
  FlightRecorder flight;
  Result<Database> db = rig.Open();
  ASSERT_TRUE(db.ok()) << db.status();
  ObsSinks sinks;
  sinks.flight = &flight;
  db->SetObsSinks(sinks);
  ASSERT_TRUE(db->Load("a[v->1].").ok());
  EXPECT_TRUE(FlightDumps(rig).empty()) << "no dump before the incident";

  rig.Inject(FaultOp::kAppend, 1, 1, FaultKind::kFail,
             StatusCode::kInternal);
  EXPECT_EQ(db->Load("b[v->2].").code(), StatusCode::kUnavailable);
  EXPECT_TRUE(db->degraded());

  std::vector<std::string> dumps = FlightDumps(rig);
  ASSERT_EQ(dumps.size(), 1u);
  Result<std::string> bytes = rig.fs.ReadFile("/db/" + dumps[0]);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  Result<JsonValue> trace = ParseJson(*bytes);
  ASSERT_TRUE(trace.ok()) << trace.status();
  const JsonValue* events = trace->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_FALSE(events->items().empty());

  bool saw_wal_failure = false, saw_degraded = false;
  for (const JsonValue& e : events->items()) {
    const JsonValue* name = e.Find("name");
    if (name == nullptr || !name->is_string()) continue;
    if (name->as_string() == "wal.append") {
      const JsonValue* args = e.Find("args");
      ASSERT_NE(args, nullptr) << "the WAL failure must carry its error";
      const JsonValue* error = args->Find("error");
      ASSERT_NE(error, nullptr);
      EXPECT_NE(error->as_string().find("Internal"), std::string::npos)
          << error->as_string();
      saw_wal_failure = true;
    }
    if (name->as_string() == "db.degraded") saw_degraded = true;
  }
  EXPECT_TRUE(saw_wal_failure) << *bytes;
  EXPECT_TRUE(saw_degraded) << *bytes;

  // The dump's own writes went through the same (now healthy) file
  // system; the database is still degraded, serving reads.
  Result<bool> holds = db->Holds("a[v->1]");
  ASSERT_TRUE(holds.ok()) << holds.status();
  EXPECT_TRUE(*holds);
}

TEST(ChaosTest, BudgetRejectionLeavesAFlightRecorderDump) {
  // The second incident trigger: a budget-rejected query on a durable
  // database dumps the ring too, without any WAL fault.
  ChaosRig rig;
  FlightRecorder flight;
  ResourceBudget budget(ResourceLimits{/*max_store_bytes=*/1ull << 40,
                                       /*max_derivations=*/1,
                                       /*max_wall_ms=*/600'000});
  rig.opts.engine.budget = &budget;
  Result<Database> db = rig.Open();
  ASSERT_TRUE(db.ok()) << db.status();
  ObsSinks sinks;
  sinks.flight = &flight;
  db->SetObsSinks(sinks);
  ASSERT_TRUE(db->Load("X[desc->>{Y}] <- X[kids->>{Y}]. "
                       "X[desc->>{Z}] <- X[kids->>{Y}], Y[desc->>{Z}]. "
                       "a[kids->>{b}]. b[kids->>{c}]. c[kids->>{d}].")
                  .ok());

  EXPECT_FALSE(db->Query("?- a[desc->>{D}].").ok())
      << "one derivation of budget cannot close a 4-chain";
  std::vector<std::string> dumps = FlightDumps(rig);
  ASSERT_EQ(dumps.size(), 1u);
  Result<std::string> bytes = rig.fs.ReadFile("/db/" + dumps[0]);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  Result<JsonValue> trace = ParseJson(*bytes);
  ASSERT_TRUE(trace.ok()) << trace.status();
  bool saw_dump_marker = false;
  for (const JsonValue& e : trace->Find("traceEvents")->items()) {
    const JsonValue* name = e.Find("name");
    if (name != nullptr && name->as_string() == "flightrec.dump") {
      saw_dump_marker = true;
    }
  }
  EXPECT_TRUE(saw_dump_marker) << *bytes;
  EXPECT_FALSE(db->degraded()) << "a budget trip is not a WAL failure";
}

TEST(ChaosTest, SeededInterleavingsStayConsistentWithTheOracle) {
  // Randomised (but seeded and deterministic) interleavings of loads,
  // queries, checkpoints, reopens and injected transient faults. Every
  // mutation that succeeds goes to the oracle; after each run the
  // recovered database must agree with a from-scratch rebuild.
  for (uint64_t seed : {1u, 7u, 42u}) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    uint64_t state = seed;
    auto lcg = [&state] {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      return state >> 33;
    };
    ChaosRig rig;
    Result<Database> db = rig.Open();
    ASSERT_TRUE(db.ok()) << db.status();
    int next_obj = 0;
    for (int step = 0; step < 40; ++step) {
      const uint64_t r = lcg() % 10;
      if (r < 5) {
        // Mutation, sometimes under a one-shot transient fault.
        if (lcg() % 4 == 0) {
          rig.Inject(FaultOp::kAny, 1, 1, FaultKind::kFail);
        }
        const std::string o = std::to_string(next_obj++);
        const std::string v = std::to_string(lcg() % 7);
        const std::string program = "o" + o + "[v->" + v + "].";
        ASSERT_TRUE(db->Load(program).ok()) << "step " << step;
        rig.applied.push_back(program);
        rig.ClearFaults();
      } else if (r < 7) {
        // Query: row count must match the oracle's.
        Database oracle;
        for (const std::string& p : rig.applied) {
          ASSERT_TRUE(oracle.Load(p).ok());
        }
        Result<ResultSet> got = db->Query("?- X[v->V].");
        ASSERT_TRUE(got.ok()) << "step " << step << ": " << got.status();
        Result<ResultSet> want = oracle.Query("?- X[v->V].");
        ASSERT_TRUE(want.ok()) << want.status();
        EXPECT_EQ(got->rows(), want->rows()) << "step " << step;
      } else if (r == 7) {
        ASSERT_TRUE(db->Checkpoint().ok()) << "step " << step;
      } else {
        rig.ClearFaults();
        db = rig.Open();
        ASSERT_TRUE(db.ok()) << "step " << step << ": " << db.status();
      }
      ASSERT_FALSE(db->degraded()) << "step " << step
                                   << ": transient faults must clear";
    }
    rig.ClearFaults();
    db = rig.Open();
    ASSERT_TRUE(db.ok()) << db.status();
    std::vector<std::string> refs;
    for (int i = 0; i < next_obj; ++i) {
      const std::string i_str = std::to_string(i);
      for (int v = 0; v < 7; ++v) {
        const std::string v_str = std::to_string(v);
        refs.push_back("o" + i_str + "[v->" + v_str + "]");
      }
    }
    ExpectMatchesOracle(*db, rig.applied, refs);
  }
}

}  // namespace
}  // namespace pathlog
