// Signatures and type checking, including the paper's claim that
// method-defined virtual objects are typecheckable.

#include "types/type_check.h"

#include <gtest/gtest.h>

#include "query/database.h"
#include "types/signature.h"

namespace pathlog {
namespace {

TEST(SignatureTableTest, DeclareAndLookup) {
  Database db;
  ASSERT_TRUE(db.Load(R"(
    person[age => integer; kids =>> person].
    employee[salary@(integer) => integer].
  )").ok());
  const SignatureTable& sigs = db.signatures();
  EXPECT_EQ(sigs.size(), 3u);
  Oid age = *db.store().FindSymbol("age");
  Oid kids = *db.store().FindSymbol("kids");
  ASSERT_EQ(sigs.ForMethod(age).size(), 1u);
  EXPECT_FALSE(sigs.ForMethod(age)[0].set_valued);
  ASSERT_EQ(sigs.ForMethod(kids).size(), 1u);
  EXPECT_TRUE(sigs.ForMethod(kids)[0].set_valued);
  Oid salary = *db.store().FindSymbol("salary");
  EXPECT_EQ(sigs.ForMethod(salary)[0].arg_types.size(), 1u);
}

TEST(ConformanceTest, BuiltinsAndHierarchy) {
  ObjectStore s;
  Oid object = s.InternSymbol("object");
  Oid integer = s.InternSymbol("integer");
  Oid str_type = s.InternSymbol("string");
  Oid person = s.InternSymbol("person");
  Oid employee = s.InternSymbol("employee");
  Oid mary = s.InternSymbol("mary");
  ASSERT_TRUE(s.AddIsa(employee, person).ok());
  ASSERT_TRUE(s.AddIsa(mary, employee).ok());
  Oid i30 = s.InternInt(30);
  Oid hello = s.InternString("hello");

  EXPECT_TRUE(SignatureTable::Conforms(s, mary, object));
  EXPECT_TRUE(SignatureTable::Conforms(s, i30, object));
  EXPECT_TRUE(SignatureTable::Conforms(s, i30, integer));
  EXPECT_FALSE(SignatureTable::Conforms(s, mary, integer));
  EXPECT_TRUE(SignatureTable::Conforms(s, hello, str_type));
  EXPECT_FALSE(SignatureTable::Conforms(s, i30, str_type));
  EXPECT_TRUE(SignatureTable::Conforms(s, mary, person));
  EXPECT_TRUE(SignatureTable::Conforms(s, mary, employee));
  EXPECT_FALSE(SignatureTable::Conforms(s, person, mary));
  // An object conforms to itself as a type.
  EXPECT_TRUE(SignatureTable::Conforms(s, person, person));
}

TEST(TypeCheckTest, ConformingStoreIsClean) {
  Database db;
  ASSERT_TRUE(db.Load(R"(
    person[age => integer; kids =>> person].
    mary : person[age->30].
    tim : person.
    mary[kids->>{tim}].
  )").ok());
  std::vector<TypeViolation> v;
  ASSERT_TRUE(db.TypeCheck(&v).ok());
  EXPECT_TRUE(v.empty());
}

TEST(TypeCheckTest, WrongResultTypeReported) {
  Database db;
  ASSERT_TRUE(db.Load(R"(
    person[age => integer].
    mary : person[age->young].
  )").ok());
  std::vector<TypeViolation> v;
  ASSERT_TRUE(db.TypeCheck(&v).ok());
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].message.find("young"), std::string::npos);
  EXPECT_NE(v[0].message.find("integer"), std::string::npos);
}

TEST(TypeCheckTest, SetMembersCheckedIndividually) {
  Database db;
  ASSERT_TRUE(db.Load(R"(
    person[kids =>> person].
    mary : person.
    tim : person.
    mary[kids->>{tim,rock}].
  )").ok());
  std::vector<TypeViolation> v;
  ASSERT_TRUE(db.TypeCheck(&v).ok());
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].message.find("rock"), std::string::npos);
}

TEST(TypeCheckTest, SignaturesInheritDownTheHierarchy) {
  Database db;
  ASSERT_TRUE(db.Load(R"(
    person[age => integer].
    employee :: person.
    mary : employee[age->nope].
  )").ok());
  std::vector<TypeViolation> v;
  ASSERT_TRUE(db.TypeCheck(&v).ok());
  EXPECT_EQ(v.size(), 1u);  // employee <= person, so the sig applies
}

TEST(TypeCheckTest, UndeclaredMethodsUnchecked) {
  Database db;
  ASSERT_TRUE(db.Load(R"(
    person[age => integer].
    mary : person[hobby->chess].
  )").ok());
  std::vector<TypeViolation> v;
  ASSERT_TRUE(db.TypeCheck(&v).ok());
  EXPECT_TRUE(v.empty());
}

TEST(TypeCheckTest, NonApplicableReceiverUnchecked) {
  // rocks are not persons: the person signature does not constrain them.
  Database db;
  ASSERT_TRUE(db.Load(R"(
    person[age => integer].
    rock1 : rock[age->old].
  )").ok());
  std::vector<TypeViolation> v;
  ASSERT_TRUE(db.TypeCheck(&v).ok());
  EXPECT_TRUE(v.empty());
}

TEST(TypeCheckTest, FlavourMismatchReported) {
  // kids declared set-valued; a scalar kids fact is a flavour mismatch.
  Database db;
  ASSERT_TRUE(db.Load(R"(
    person[kids =>> person].
    mary : person[kids->tim].
  )").ok());
  std::vector<TypeViolation> v;
  ASSERT_TRUE(db.TypeCheck(&v).ok());
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].message.find("flavour"), std::string::npos);
}

TEST(TypeCheckTest, ArgumentTypesSelectSignature) {
  Database db;
  ASSERT_TRUE(db.Load(R"(
    employee[salary@(integer) => integer].
    mary : employee.
    mary[salary@(1994)->50000].
  )").ok());
  std::vector<TypeViolation> v;
  ASSERT_TRUE(db.TypeCheck(&v).ok());
  EXPECT_TRUE(v.empty());
  // Wrong result type with matching args is a violation.
  ASSERT_TRUE(db.Load("mary[salary@(1995)->aLot].").ok());
  v.clear();
  ASSERT_TRUE(db.TypeCheck(&v).ok());
  EXPECT_EQ(v.size(), 1u);
}

TEST(TypeCheckTest, VirtualObjectsAreTypechecked) {
  // The paper's argument: virtual objects defined via methods fall
  // under ordinary signatures. The virtual boss must be an employee —
  // it is not, so the checker flags it.
  Database db;
  ASSERT_TRUE(db.Load(R"(
    employee[boss => employee].
    p1 : employee[worksFor->cs1].
    X.boss[worksFor->D] <- X:employee[worksFor->D].
  )").ok());
  ASSERT_TRUE(db.Materialize().ok());
  std::vector<TypeViolation> v;
  ASSERT_TRUE(db.TypeCheck(&v).ok());
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v[0].message.find("_boss(p1)"), std::string::npos);

  // Declaring the virtual object's class in the rule head fixes it.
  // (The class must not be `employee` itself: a virtual boss that is an
  // employee would get its own virtual boss, and the rule would never
  // terminate — the paper's rule 6.1 deliberately leaves virtual
  // bosses outside the employee class.)
  Database db2;
  ASSERT_TRUE(db2.Load(R"(
    employee[boss => staff].
    p1 : employee[worksFor->cs1].
    X.boss[worksFor->D]:staff <- X:employee[worksFor->D].
  )").ok());
  ASSERT_TRUE(db2.Materialize().ok());
  std::vector<TypeViolation> v2;
  ASSERT_TRUE(db2.TypeCheck(&v2).ok());
  EXPECT_TRUE(v2.empty());
}

TEST(TypeCheckTest, StrictModeReturnsError) {
  Database db;
  ASSERT_TRUE(db.Load(R"(
    person[age => integer].
    mary : person[age->young].
  )").ok());
  TypeChecker checker(db.store(), db.signatures());
  EXPECT_EQ(checker.CheckAllStrict().code(), StatusCode::kTypeError);
}

TEST(SignatureTableTest, NonGroundDeclarationRejected) {
  Database db;
  EXPECT_EQ(db.Load("person[X => integer].").code(), StatusCode::kIllFormed);
}

}  // namespace
}  // namespace pathlog
