#include "parser/parser.h"

#include <gtest/gtest.h>

#include "ast/analysis.h"
#include "ast/printer.h"

namespace pathlog {
namespace {

// Parses a reference and returns its normalised printing (selector
// sugar expanded, filter groups canonicalised).
std::string Norm(std::string_view src) {
  Result<RefPtr> r = ParseRef(src);
  if (!r.ok()) return std::string("<error: ") + r.status().ToString() + ">";
  return ToString(**r);
}

TEST(ParseRefTest, SimpleReferences) {
  EXPECT_EQ(Norm("mary"), "mary");
  EXPECT_EQ(Norm("X"), "X");
  EXPECT_EQ(Norm("30"), "30");
  EXPECT_EQ(Norm("-7"), "-7");
  EXPECT_EQ(Norm("\"red\""), "\"red\"");
  EXPECT_EQ(Norm("(mary)"), "(mary)");
}

TEST(ParseRefTest, Paths) {
  EXPECT_EQ(Norm("mary.spouse"), "mary.spouse");
  EXPECT_EQ(Norm("mary.spouse.age"), "mary.spouse.age");
  EXPECT_EQ(Norm("p1..assistants"), "p1..assistants");
  EXPECT_EQ(Norm("p1..assistants.salary"), "p1..assistants.salary");
  EXPECT_EQ(Norm("p1..assistants..projects"), "p1..assistants..projects");
}

TEST(ParseRefTest, PathWithArguments) {
  EXPECT_EQ(Norm("john.salary@(1994)"), "john.salary@(1994)");
  EXPECT_EQ(Norm("p1.paidFor@(p1..vehicles)"), "p1.paidFor@(p1..vehicles)");
  EXPECT_EQ(Norm("f.g@(a,b,c)"), "f.g@(a,b,c)");
}

TEST(ParseRefTest, Molecules) {
  EXPECT_EQ(Norm("mary[boss->peter]"), "mary[boss->peter]");
  EXPECT_EQ(Norm("mary[age->30;boss->peter]"), "mary[age->30; boss->peter]");
  EXPECT_EQ(Norm("p2[friends->>{p3,p4}]"), "p2[friends->>{p3,p4}]");
  EXPECT_EQ(Norm("p2[friends->>p1..assistants]"),
            "p2[friends->>p1..assistants]");
  EXPECT_EQ(Norm("X : employee"), "X:employee");
}

TEST(ParseRefTest, MutualNesting) {
  // Paper section 4.1: mary.spouse[boss->mary].age
  EXPECT_EQ(Norm("mary.spouse[boss->mary].age"), "mary.spouse[boss->mary].age");
  // Names may be further specified inside a filter.
  EXPECT_EQ(Norm("mary.spouse[boss->mary[age->25]]"),
            "mary.spouse[boss->mary[age->25]]");
}

TEST(ParseRefTest, SelectorSugarExpandsToSelf) {
  EXPECT_EQ(Norm("X..vehicles.color[Z]"), "X..vehicles.color[self->Z]");
  EXPECT_EQ(Norm("X.vehicles[Y].color[Z]"),
            "X.vehicles[self->Y].color[self->Z]");
}

TEST(ParseRefTest, PaperQuery21) {
  // The flagship two-dimensional path of section 2.
  std::string norm = Norm(
      "X:employee[age->30; city->newYork]"
      "..vehicles:automobile[cylinders->4].color[Z]");
  EXPECT_EQ(norm,
            "X:employee[age->30; city->newYork]"
            "..vehicles:automobile[cylinders->4].color[self->Z]");
}

TEST(ParseRefTest, BracketsChangeGrouping) {
  // L : integer.list applies list to the molecule (L : integer);
  // L : (integer.list) tests membership in the class integer.list.
  Result<RefPtr> a = ParseRef("L : integer.list");
  Result<RefPtr> b = ParseRef("L : (integer.list)");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*a)->kind, RefKind::kPath);
  EXPECT_EQ((*b)->kind, RefKind::kMolecule);
  EXPECT_FALSE(RefEquals(**a, **b));
}

TEST(ParseRefTest, GenericTcMethodPosition) {
  EXPECT_EQ(Norm("X..(M.tc)"), "X..(M.tc)");
  EXPECT_EQ(Norm("peter..(kids.tc)"), "peter..(kids.tc)");
}

TEST(ParseRefTest, TrailingTerminatorTolerated) {
  EXPECT_EQ(Norm("mary.spouse."), "mary.spouse");
}

TEST(ParseRefTest, Errors) {
  EXPECT_FALSE(ParseRef("").ok());
  EXPECT_FALSE(ParseRef("mary.[x]").ok());
  EXPECT_FALSE(ParseRef("mary[").ok());
  EXPECT_FALSE(ParseRef("mary[age->]").ok());
  EXPECT_FALSE(ParseRef("mary[age->>{}]").ok());
  EXPECT_FALSE(ParseRef("mary mary").ok());
  EXPECT_FALSE(ParseRef("(mary").ok());
  // Selectors cannot take arguments.
  EXPECT_FALSE(ParseRef("mary[x@(1)]").ok());
}

TEST(ParseRefTest, HostileNestingRejectedNotCrashing) {
  std::string deep(2000, '(');
  deep += "x";
  deep.append(2000, ')');
  Result<RefPtr> r = ParseRef(deep);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);

  std::string chain = "x";
  for (int i = 0; i < 3000; ++i) chain += ".m";
  Result<RefPtr> c = ParseRef(chain);
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kParseError);

  // Realistic depth still parses.
  std::string fine = "x";
  for (int i = 0; i < 200; ++i) fine += ".m[a->1]";
  EXPECT_TRUE(ParseRef(fine).ok());
}

TEST(ParseRuleTest, FactAndRule) {
  Result<Rule> fact = ParseRule("mary[age->30].");
  ASSERT_TRUE(fact.ok());
  EXPECT_TRUE(fact->IsFact());

  Result<Rule> rule =
      ParseRule("X[power->Y] <- X:automobile.engine[power->Y].");
  ASSERT_TRUE(rule.ok());
  EXPECT_FALSE(rule->IsFact());
  EXPECT_EQ(rule->body.size(), 1u);
  EXPECT_EQ(ToString(*rule),
            "X[power->Y] <- X:automobile.engine[power->Y].");
}

TEST(ParseRuleTest, PrologStyleIfAccepted) {
  Result<Rule> rule = ParseRule("X[a->1] :- X:thing.");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule->body.size(), 1u);
}

TEST(ParseRuleTest, MultiLiteralBodyAndNegation) {
  Result<Rule> rule =
      ParseRule("X[rich->1] <- X:employee[salary->S], not X[boss->Y].");
  ASSERT_TRUE(rule.ok());
  ASSERT_EQ(rule->body.size(), 2u);
  EXPECT_FALSE(rule->body[0].negated);
  EXPECT_TRUE(rule->body[1].negated);
}

TEST(ParseRuleTest, PaperVirtualAddressRule) {
  Result<Rule> rule = ParseRule(
      "X.address[street->X.street; city->X.city] <- X : person.");
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(ToString(*rule),
            "X.address[street->X.street; city->X.city] <- X:person.");
}

TEST(ParseQueryTest, QueryForms) {
  Result<Query> q1 = ParseQuery("?- X:employee.");
  ASSERT_TRUE(q1.ok());
  EXPECT_EQ(q1->body.size(), 1u);

  // The ?- prefix and trailing dot are optional for ad-hoc queries.
  Result<Query> q2 = ParseQuery("X:employee, X[age->30]");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->body.size(), 2u);
}

TEST(ParseProgramTest, MixedClauses) {
  Result<Program> p = ParseProgram(R"(
    % the paper's kinship facts
    peter[kids->>{tim,mary}].
    tim[kids->>{sally}].
    mary[kids->>{tom,paul}].
    X[desc->>{Y}] <- X[kids->>{Y}].
    X[desc->>{Y}] <- X..desc[kids->>{Y}].
    ?- peter[desc->>{Z}].
  )");
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_EQ(p->rules.size(), 5u);
  EXPECT_EQ(p->queries.size(), 1u);
  int facts = 0;
  for (const Rule& r : p->rules) facts += r.IsFact() ? 1 : 0;
  EXPECT_EQ(facts, 3);
}

TEST(ParseProgramTest, Signatures) {
  Result<Program> p = ParseProgram(R"(
    person[age => integer; kids =>> person].
    employee[salary@(integer) => integer].
  )");
  ASSERT_TRUE(p.ok()) << p.status();
  ASSERT_EQ(p->signatures.size(), 3u);
  EXPECT_FALSE(p->signatures[0].set_valued);
  EXPECT_TRUE(p->signatures[1].set_valued);
  EXPECT_EQ(p->signatures[2].arg_types.size(), 1u);
  EXPECT_EQ(ToString(p->signatures[2]),
            "employee[salary@(integer) => integer].");
}

TEST(ParseProgramTest, SignatureArrowsRejectedInsideOrdinaryRefs) {
  EXPECT_FALSE(ParseProgram("X[a->b[c => d]].").ok());
}

TEST(ParseProgramTest, MissingTerminatorFails) {
  EXPECT_FALSE(ParseProgram("mary[age->30]").ok());
}

TEST(ParseProgramTest, QueriesNeedTerminator) {
  EXPECT_FALSE(ParseProgram("?- X:employee").ok());
}

}  // namespace
}  // namespace pathlog
