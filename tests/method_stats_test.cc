// The per-method inverted-index statistics: the exact top-k
// heavy-hitter sketch (insert-order independence, ties, eviction at
// k, empty methods) and the two runtime-bound bucket estimators the
// planner selects between.

#include "store/method_stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "store/object_store.h"

namespace pathlog {
namespace {

/// Drives a MethodStats the way the store does: `counts[i]` facts for
/// value oid i, asserted in the given per-fact order.
MethodStats Replay(const std::vector<Oid>& fact_values) {
  MethodStats s;
  std::vector<uint64_t> bucket(
      fact_values.empty()
          ? 0
          : *std::max_element(fact_values.begin(), fact_values.end()) + 1,
      0);
  uint64_t gen = 0;
  for (Oid v : fact_values) {
    ++bucket[v];
    s.Update(v, bucket[v], bucket[v] == 1, gen++);
  }
  return s;
}

std::vector<Oid> FactsFor(const std::vector<uint64_t>& counts) {
  std::vector<Oid> facts;
  for (Oid v = 0; v < counts.size(); ++v) {
    for (uint64_t i = 0; i < counts[v]; ++i) facts.push_back(v);
  }
  return facts;
}

TEST(MethodStatsTest, EmptyMethodIsAllZero) {
  MethodStats s;
  EXPECT_EQ(s.total, 0u);
  EXPECT_EQ(s.distinct, 0u);
  EXPECT_EQ(s.last_gen, UINT64_MAX);
  EXPECT_TRUE(s.heavy.empty());
  EXPECT_EQ(AverageBucketEstimate(s), 0.0);
  EXPECT_EQ(SkewAwareBucketEstimate(s), 0.0);
}

TEST(MethodStatsTest, CountersAndGenerationStamp) {
  MethodStats s = Replay({0, 1, 1, 2, 1});
  EXPECT_EQ(s.total, 5u);
  EXPECT_EQ(s.distinct, 3u);
  EXPECT_EQ(s.last_gen, 4u);  // gen of the final fact
  ASSERT_FALSE(s.heavy.empty());
  EXPECT_EQ(s.heavy[0], (HeavyBucket{1, 3}));
}

TEST(MethodStatsTest, HeavyListIsInsertOrderIndependent) {
  // More values than k, with a clear head: every permutation of the
  // fact stream must retain the same heavy list, because updates carry
  // the value's true bucket size.
  std::vector<uint64_t> counts = {1, 7, 2, 2, 40, 1, 3, 5, 1, 9, 4, 6, 2};
  ASSERT_GT(counts.size(), kStatsTopK);
  std::vector<Oid> facts = FactsFor(counts);
  MethodStats sorted_order = Replay(facts);
  std::mt19937 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::shuffle(facts.begin(), facts.end(), rng);
    MethodStats shuffled = Replay(facts);
    EXPECT_EQ(shuffled.heavy, sorted_order.heavy) << "trial " << trial;
    EXPECT_EQ(shuffled.total, sorted_order.total);
    EXPECT_EQ(shuffled.distinct, sorted_order.distinct);
  }
  // And the list is count-descending with the true top values.
  ASSERT_EQ(sorted_order.heavy.size(), kStatsTopK);
  EXPECT_EQ(sorted_order.heavy[0], (HeavyBucket{4, 40}));
  EXPECT_EQ(sorted_order.heavy[1], (HeavyBucket{9, 9}));
  for (size_t i = 1; i < sorted_order.heavy.size(); ++i) {
    EXPECT_LE(sorted_order.heavy[i].count, sorted_order.heavy[i - 1].count);
  }
}

TEST(MethodStatsTest, TiesKeepTheSmallestOids) {
  // k + 3 values all with the same count: the retained k are the
  // smallest oids, in every insert order.
  std::vector<uint64_t> counts(kStatsTopK + 3, 2);
  std::vector<Oid> facts = FactsFor(counts);
  std::mt19937 rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    std::shuffle(facts.begin(), facts.end(), rng);
    MethodStats s = Replay(facts);
    ASSERT_EQ(s.heavy.size(), kStatsTopK);
    for (size_t i = 0; i < kStatsTopK; ++i) {
      EXPECT_EQ(s.heavy[i], (HeavyBucket{static_cast<Oid>(i), 2}));
    }
  }
}

TEST(MethodStatsTest, EvictionAtKAndReentry) {
  // Fill the sketch with k values of count 3; a (k+1)-th value is kept
  // out at counts 1..3 (tie goes to the smaller oids already in), then
  // evicts the floor the moment it outgrows it.
  MethodStats s;
  uint64_t gen = 0;
  for (Oid v = 0; v < kStatsTopK; ++v) {
    for (uint64_t c = 1; c <= 3; ++c) s.Update(v, c, c == 1, gen++);
  }
  const Oid late = static_cast<Oid>(kStatsTopK);
  s.Update(late, 1, true, gen++);
  s.Update(late, 2, false, gen++);
  s.Update(late, 3, false, gen++);
  ASSERT_EQ(s.heavy.size(), kStatsTopK);
  for (const HeavyBucket& h : s.heavy) EXPECT_NE(h.value, late);
  s.Update(late, 4, false, gen++);
  EXPECT_EQ(s.heavy[0], (HeavyBucket{late, 4}));
  EXPECT_EQ(s.total, 3 * kStatsTopK + 4);
  EXPECT_EQ(s.distinct, kStatsTopK + 1);
}

TEST(MethodStatsTest, SkewAwareEstimateReadsTheHotBucket) {
  // 99 facts on one value, 1 on another: the average says 50, the
  // skew-aware estimate prices the probe at the hot bucket.
  std::vector<uint64_t> counts = {99, 1};
  MethodStats s = Replay(FactsFor(counts));
  EXPECT_DOUBLE_EQ(AverageBucketEstimate(s), 50.0);
  EXPECT_DOUBLE_EQ(SkewAwareBucketEstimate(s), 99.0);
}

TEST(MethodStatsTest, UniformDistributionEstimatesStayClose) {
  // No skew: both estimators must agree (the quantile of equal buckets
  // is the bucket, the residual average is the same bucket).
  std::vector<uint64_t> counts(kStatsTopK + 12, 4);
  MethodStats s = Replay(FactsFor(counts));
  EXPECT_DOUBLE_EQ(AverageBucketEstimate(s), 4.0);
  EXPECT_DOUBLE_EQ(SkewAwareBucketEstimate(s), 4.0);
}

TEST(MethodStatsTest, ResidualAverageFloorsTheQuantile) {
  // A sketch whose retained buckets are all tiny but whose residual
  // mass is dense: the floor keeps the estimate honest. Construct
  // directly: k buckets of count 1 retained, claimed residual of 10
  // buckets averaging 100 (cannot arise from real replay — replay
  // would retain the heavy buckets — but the floor must still hold).
  MethodStats s;
  for (Oid v = 0; v < kStatsTopK; ++v) {
    s.heavy.push_back(HeavyBucket{v, 1});
  }
  s.distinct = kStatsTopK + 10;
  s.total = kStatsTopK + 1000;
  EXPECT_DOUBLE_EQ(SkewAwareBucketEstimate(s), 100.0);
}

TEST(MethodStatsTest, StoreMaintainsScalarAndSetStatsIncrementally) {
  ObjectStore store;
  Oid city = store.InternSymbol("city");
  Oid likes = store.InternSymbol("likes");
  Oid metro = store.InternSymbol("metro");
  Oid village = store.InternSymbol("village");
  for (int i = 0; i < 9; ++i) {
    const std::string suffix = std::to_string(i);
    Oid r = store.InternSymbol("r" + suffix);
    ASSERT_TRUE(store.SetScalar(city, r, {}, metro).ok());
    EXPECT_TRUE(store.AddSetMember(likes, r, {}, metro));
  }
  Oid odd = store.InternSymbol("odd");
  ASSERT_TRUE(store.SetScalar(city, odd, {}, village).ok());
  EXPECT_TRUE(store.AddSetMember(likes, odd, {}, village));

  const MethodStats& sc = store.ScalarValueStats(city);
  EXPECT_EQ(sc.total, 10u);
  EXPECT_EQ(sc.distinct, 2u);
  EXPECT_EQ(sc.total, store.ScalarEntries(city).size());
  EXPECT_EQ(sc.distinct, store.ScalarDistinctValues(city));
  ASSERT_EQ(sc.heavy.size(), 2u);
  EXPECT_EQ(sc.heavy[0], (HeavyBucket{metro, 9}));
  EXPECT_EQ(sc.heavy[1], (HeavyBucket{village, 1}));

  const MethodStats& st = store.SetMemberStats(likes);
  EXPECT_EQ(st.total, 10u);
  EXPECT_EQ(st.distinct, store.SetDistinctMembers(likes));
  ASSERT_EQ(st.heavy.size(), 2u);
  EXPECT_EQ(st.heavy[0], (HeavyBucket{metro, 9}));

  // A duplicate assertion adds no fact and must not move the stats.
  Oid r0 = store.InternSymbol("r0");
  ASSERT_TRUE(store.SetScalar(city, r0, {}, metro).ok());
  EXPECT_FALSE(store.AddSetMember(likes, r0, {}, metro));
  EXPECT_EQ(store.ScalarValueStats(city).total, 10u);
  EXPECT_EQ(store.SetMemberStats(likes).total, 10u);

  // Methods with no facts expose empty stats.
  Oid unused = store.InternSymbol("unused");
  EXPECT_EQ(store.ScalarValueStats(unused).total, 0u);
  EXPECT_EQ(store.SetMemberStats(unused).distinct, 0u);
}

TEST(MethodStatsTest, StoreStatsGenerationStampsMatchTheFactLog) {
  ObjectStore store;
  Oid m = store.InternSymbol("m");
  Oid a = store.InternSymbol("a");
  Oid v = store.InternSymbol("v");
  ASSERT_TRUE(store.SetScalar(m, a, {}, v).ok());
  uint64_t scalar_gen = store.generation() - 1;
  EXPECT_EQ(store.ScalarValueStats(m).last_gen, scalar_gen);
  Oid b = store.InternSymbol("b");
  EXPECT_TRUE(store.AddSetMember(m, a, {}, b));
  EXPECT_EQ(store.SetMemberStats(m).last_gen, store.generation() - 1);
  // Scalar stats are untouched by the set fact.
  EXPECT_EQ(store.ScalarValueStats(m).last_gen, scalar_gen);
}

}  // namespace
}  // namespace pathlog
