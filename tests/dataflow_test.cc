// Tests for the semantic-analysis layer (lint/dataflow/): the generic
// fixpoint solver and SCC routine, the abstract domains, the
// AnalyzeProgram summary, one golden fixture per PL014-PL019 code, the
// pathlog_lint --analyze --json round trip, and the PL017 acceptance
// demo (the flagged program really does run away without the check).

#include "lint/dataflow/analyses.h"

#include <array>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/dataflow/dataflow.h"
#include "lint/dataflow/domains.h"
#include "lint/lint.h"
#include "parser/parser.h"
#include "query/database.h"

namespace pathlog {
namespace {

// ---- domains --------------------------------------------------------

TEST(SortDomainTest, JoinIsMonotoneCommutativeIdempotent) {
  for (SortSet a = 0; a <= kSortTop; ++a) {
    for (SortSet b = 0; b <= kSortTop; ++b) {
      SortSet ab = a;
      bool grew = SortDomain::Join(&ab, b);
      EXPECT_EQ(ab, a | b);
      EXPECT_EQ(grew, ab != a) << "grew must mean the value changed";
      SortSet ba = b;
      SortDomain::Join(&ba, a);
      EXPECT_EQ(ab, ba);  // commutative
      SortSet again = ab;
      EXPECT_FALSE(SortDomain::Join(&again, b));  // idempotent
      EXPECT_EQ(again, ab);
    }
  }
}

TEST(SortDomainTest, CountAndNames) {
  EXPECT_EQ(SortCount(kSortBottom), 0);
  EXPECT_EQ(SortCount(kSortInt), 1);
  EXPECT_EQ(SortCount(kSortTop), 3);
  EXPECT_EQ(SortSetName(kSortBottom), "unknown");
  EXPECT_EQ(SortSetName(kSortInt), "integer");
  EXPECT_EQ(SortSetName(static_cast<SortSet>(kSortInt | kSortString)),
            "integer+string");
  EXPECT_EQ(SortSetName(kSortTop), "integer+string+object");
}

TEST(LiveDomainTest, TwoPointLattice) {
  LiveDomain::Value v = LiveDomain::Bottom();
  EXPECT_EQ(v, 0);
  EXPECT_FALSE(LiveDomain::Join(&v, 0));  // dead ⊔ dead = dead
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(LiveDomain::Join(&v, 1));  // dead ⊔ live grows
  EXPECT_EQ(v, 1);
  EXPECT_FALSE(LiveDomain::Join(&v, 1));  // live is top
  EXPECT_FALSE(LiveDomain::Join(&v, 0));
  EXPECT_EQ(v, 1);
}

TEST(IntIntervalTest, MeetAndToString) {
  IntInterval i;
  EXPECT_FALSE(i.empty());
  EXPECT_EQ(i.ToString(), "(-inf, +inf)");
  i.Meet(5, std::numeric_limits<int64_t>::max());  // A.geq@(5)
  EXPECT_EQ(i.ToString(), "[5, +inf)");
  EXPECT_TRUE(i.Contains(5));
  EXPECT_FALSE(i.Contains(4));
  i.Meet(std::numeric_limits<int64_t>::min(), 10);  // A.leq@(10)
  EXPECT_EQ(i.ToString(), "[5, 10]");
  i.Meet(7, 7);  // A.intEq@(7)
  EXPECT_EQ(i.ToString(), "[7, 7]");
  i.Meet(8, std::numeric_limits<int64_t>::max());  // contradiction
  EXPECT_TRUE(i.empty());
  EXPECT_EQ(i.ToString(), "(empty)");
  EXPECT_FALSE(i.Contains(8));
}

// ---- fixpoint solver ------------------------------------------------

TEST(FixpointSolverTest, ConvergesOnCyclicGraph) {
  // Three nodes in a cycle: 0 -> 1 -> 2 -> 0, each transfer copying its
  // read node into its defined node. Seeding node 0 must saturate the
  // whole cycle, and the worklist must terminate well short of the
  // application cap.
  std::vector<TransferIO> transfers = {
      {{0}, {1}}, {{1}, {2}}, {{2}, {0}}};
  FixpointSolver<SortDomain> solver(3, transfers);
  solver.Seed(0, kSortInt);
  size_t applications =
      solver.Solve([&](size_t t, FixpointSolver<SortDomain>& s) {
        s.Update(transfers[t].defines[0], s.value(transfers[t].reads[0]));
      });
  EXPECT_EQ(solver.value(0), kSortInt);
  EXPECT_EQ(solver.value(1), kSortInt);
  EXPECT_EQ(solver.value(2), kSortInt);
  // Every transfer runs once up front; the cycle re-queues each at most
  // once more before values stop changing.
  EXPECT_GE(applications, 3u);
  EXPECT_LE(applications, 6u);
  EXPECT_LT(applications, FixpointSolver<SortDomain>::kMaxApplications);
}

TEST(FixpointSolverTest, JoinAccumulatesAcrossPaths) {
  // Diamond: node 0 (int) and node 1 (string) both flow into node 2,
  // which flows into node 3. The join, not the last write, must win.
  std::vector<TransferIO> transfers = {
      {{0}, {2}}, {{1}, {2}}, {{2}, {3}}};
  FixpointSolver<SortDomain> solver(4, transfers);
  solver.Seed(0, kSortInt);
  solver.Seed(1, kSortString);
  solver.Solve([&](size_t t, FixpointSolver<SortDomain>& s) {
    s.Update(transfers[t].defines[0], s.value(transfers[t].reads[0]));
  });
  EXPECT_EQ(solver.value(2), kSortInt | kSortString);
  EXPECT_EQ(solver.value(3), kSortInt | kSortString);
}

TEST(FixpointSolverTest, UnreachedNodesStayBottom) {
  std::vector<TransferIO> transfers = {{{0}, {1}}};
  FixpointSolver<LiveDomain> solver(3, transfers);
  solver.Seed(0, 1);
  solver.Solve([&](size_t t, FixpointSolver<LiveDomain>& s) {
    s.Update(transfers[t].defines[0], s.value(transfers[t].reads[0]));
  });
  EXPECT_EQ(solver.value(0), 1);
  EXPECT_EQ(solver.value(1), 1);
  EXPECT_EQ(solver.value(2), LiveDomain::Bottom());
}

TEST(FixpointSolverTest, ReQueuesOnlyReadersOfChangedNodes) {
  // Transfer 1 reads node 9, which nothing defines: after its initial
  // mandatory run it must never run again, so the application count
  // stays at the minimum even while the chain 0->1->...->5 settles.
  std::vector<TransferIO> transfers;
  for (uint32_t n = 0; n < 5; ++n) {
    transfers.push_back({{n}, {n + 1}});
  }
  transfers.push_back({{9}, {8}});
  FixpointSolver<LiveDomain> solver(10, transfers);
  solver.Seed(0, 1);
  size_t applications =
      solver.Solve([&](size_t t, FixpointSolver<LiveDomain>& s) {
        s.Update(transfers[t].defines[0], s.value(transfers[t].reads[0]));
      });
  EXPECT_EQ(solver.value(5), 1);
  EXPECT_EQ(solver.value(8), LiveDomain::Bottom());
  // 6 initial runs + at most one re-run per chain transfer whose input
  // arrived after its first run.
  EXPECT_LE(applications, 6u + 5u);
}

// ---- strongly connected components ----------------------------------

TEST(SccTest, CycleMembersShareAComponent) {
  // 0 -> 1 -> 2 -> 0 is one cycle; 3 hangs off it; 4 is isolated.
  std::vector<std::pair<uint32_t, uint32_t>> edges = {
      {0, 1}, {1, 2}, {2, 0}, {2, 3}};
  std::vector<uint32_t> comp = StronglyConnectedComponents(5, edges);
  ASSERT_EQ(comp.size(), 5u);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[0], comp[4]);
  EXPECT_NE(comp[3], comp[4]);
}

TEST(SccTest, AcyclicChainIsAllSingletons) {
  std::vector<std::pair<uint32_t, uint32_t>> edges = {{0, 1}, {1, 2}, {2, 3}};
  std::vector<uint32_t> comp = StronglyConnectedComponents(4, edges);
  std::set<uint32_t> distinct(comp.begin(), comp.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(SccTest, TwoDisjointCyclesGetDistinctIds) {
  std::vector<std::pair<uint32_t, uint32_t>> edges = {
      {0, 1}, {1, 0}, {2, 3}, {3, 2}};
  std::vector<uint32_t> comp = StronglyConnectedComponents(4, edges);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
}

// ---- AnalyzeProgram summary -----------------------------------------

Program Parse(std::string_view source) {
  Result<Program> program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status();
  return *program;
}

TEST(AnalyzeProgramTest, TypeFlowPropagatesThroughRules) {
  Program program = Parse(R"(
    alice[age->30].
    bob[city->"detroit"].
    X[years->A] <- X[age->A].
    X[place->C] <- X[city->C].
  )");
  AnalysisSummary summary = AnalyzeProgram(program, {}, nullptr);
  EXPECT_EQ(summary.method_sorts["age"], kSortInt);
  EXPECT_EQ(summary.method_sorts["years"], kSortInt);
  EXPECT_EQ(summary.method_sorts["city"], kSortString);
  EXPECT_EQ(summary.method_sorts["place"], kSortString);
  EXPECT_GT(summary.sort_applications, 0u);
}

TEST(AnalyzeProgramTest, ReachabilityProvesEmptyMethods) {
  Program program = Parse(R"(
    alice[age->30].
    X[flag->1] <- X[ghost->1].
    X[echo->A] <- X[age->A].
  )");
  AnalysisSummary summary = AnalyzeProgram(program, {}, nullptr);
  EXPECT_TRUE(summary.live_methods.count("age"));
  EXPECT_TRUE(summary.live_methods.count("echo"));
  EXPECT_TRUE(summary.empty_methods.count("ghost"));
  // flag's only producer reads the empty ghost, so flag is empty too.
  EXPECT_TRUE(summary.empty_methods.count("flag"));
  EXPECT_GT(summary.live_applications, 0u);
}

TEST(AnalyzeProgramTest, AssumeDefinedSeedsReachability) {
  Program program = Parse("X[flag->1] <- X[ghost->1].");
  AnalysisOptions options;
  options.assume_defined.insert("ghost");
  AnalysisSummary summary = AnalyzeProgram(program, options, nullptr);
  EXPECT_TRUE(summary.live_methods.count("ghost"));
  EXPECT_TRUE(summary.live_methods.count("flag"));
  EXPECT_FALSE(summary.empty_methods.count("flag"));
}

TEST(AnalyzeProgramTest, ExtensionalSortsSeedTypeFlow) {
  Program program = Parse("X[years->A] <- X[age->A].");
  AnalysisOptions options;
  options.assume_defined.insert("age");
  options.extensional_sorts["age"] = kSortInt;
  AnalysisSummary summary = AnalyzeProgram(program, options, nullptr);
  EXPECT_EQ(summary.method_sorts["years"], kSortInt);
}

TEST(AnalyzeProgramTest, AdornmentsRecordBindingModes) {
  Program program = Parse(R"(
    car1 : automobile.
    alice[vehicles->>{car1}].
    V[ownedBy->>{X}] <- X[vehicles->>{V}], V : automobile.
  )");
  AnalysisSummary summary = AnalyzeProgram(program, {}, nullptr);
  ASSERT_EQ(summary.adornments.size(), 1u);
  const RuleAdornment& a = summary.adornments[0];
  ASSERT_EQ(a.literals.size(), 2u);
  // Engine order keeps the vehicles scan first: X is unbound there and
  // nothing drives an index, then `V : automobile` runs with V bound.
  EXPECT_FALSE(a.literals[0].anchor_bound);
  EXPECT_FALSE(a.literals[0].index_driven);
  EXPECT_TRUE(a.literals[1].anchor_bound);
  EXPECT_TRUE(a.literals[1].index_driven);
}

// ---- golden fixtures, PL014-PL019 -----------------------------------

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

LintReport AnalyzeLint(std::string_view source) {
  LintOptions options;
  options.analyze = true;
  return ProgramLinter(std::move(options)).LintSource(source);
}

const Diagnostic* FindCode(const LintReport& report, LintCode code) {
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

struct AnalysisFixture {
  const char* file;
  LintCode code;
  Severity severity;
};

const AnalysisFixture kAnalysisFixtures[] = {
    {"pl014_sort_conflict.plg", LintCode::kSortConflict, Severity::kWarning},
    {"pl015_contradiction.plg", LintCode::kContradiction, Severity::kWarning},
    {"pl016_dead_rule.plg", LintCode::kDeadRule, Severity::kWarning},
    {"pl017_nonterminating.plg", LintCode::kNonTermination, Severity::kError},
    {"pl018_unbounded_invention.plg", LintCode::kUnboundedInvention,
     Severity::kWarning},
    {"pl019_unbound_target.plg", LintCode::kUnboundTarget, Severity::kWarning},
};

TEST(AnalysisFixtureTest, EveryFixtureFiresExactlyItsCode) {
  for (const AnalysisFixture& f : kAnalysisFixtures) {
    std::string source =
        ReadFile(std::string(PATHLOG_LINT_FIXTURES_DIR) + "/" + f.file);
    LintReport report = AnalyzeLint(source);
    const Diagnostic* d = FindCode(report, f.code);
    ASSERT_NE(d, nullptr) << f.file << ":\n" << report.ToString(f.file);
    EXPECT_EQ(d->severity, f.severity) << f.file;
    EXPECT_GT(d->line, 0) << f.file;
    EXPECT_GT(d->column, 0) << f.file;
    // The fixtures are golden: nothing else may fire on them.
    for (const Diagnostic& other : report.diagnostics()) {
      EXPECT_EQ(other.code, f.code)
          << f.file << " also fired " << LintCodeName(other.code) << ": "
          << other.message;
    }
  }
}

TEST(AnalysisFixtureTest, FixturesAreCleanWithoutAnalyze) {
  // The new codes live entirely behind LintOptions::analyze: the plain
  // PL001-PL013 linter must consider every analysis fixture clean.
  for (const AnalysisFixture& f : kAnalysisFixtures) {
    std::string source =
        ReadFile(std::string(PATHLOG_LINT_FIXTURES_DIR) + "/" + f.file);
    LintReport report = ProgramLinter().LintSource(source);
    EXPECT_TRUE(report.empty()) << f.file << ":\n" << report.ToString(f.file);
  }
}

TEST(AnalysisFixtureTest, ErrorsOnlyKeepsPl017AndDropsWarnings) {
  LintOptions options;
  options.analyze = true;
  options.errors_only = true;
  ProgramLinter linter(std::move(options));
  std::string pl017 = ReadFile(std::string(PATHLOG_LINT_FIXTURES_DIR) +
                               "/pl017_nonterminating.plg");
  EXPECT_TRUE(linter.LintSource(pl017).Has(LintCode::kNonTermination));
  std::string pl014 = ReadFile(std::string(PATHLOG_LINT_FIXTURES_DIR) +
                               "/pl014_sort_conflict.plg");
  EXPECT_TRUE(linter.LintSource(pl014).empty());
}

// ---- pathlog_lint --analyze --json round trip -----------------------

std::string RunLintTool(const std::string& args) {
  std::string cmd = std::string(PATHLOG_LINT_PATH) + " " + args + " 2>&1";
  std::array<char, 4096> buffer;
  std::string output;
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  if (pipe == nullptr) return output;
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    output += buffer.data();
  }
  // Exit status 1 just means diagnostics were found — expected here.
  pclose(pipe);
  return output;
}

TEST(LintToolTest, AnalyzeJsonRoundTripsEveryNewCode) {
  for (const AnalysisFixture& f : kAnalysisFixtures) {
    std::string path = std::string(PATHLOG_LINT_FIXTURES_DIR) + "/" + f.file;
    std::string out = RunLintTool("--analyze --json " + path);
    std::string code = LintCodeName(f.code);
    EXPECT_NE(out.find("\"code\":\"" + code + "\""), std::string::npos)
        << f.file << " JSON: " << out;
    std::string severity =
        f.severity == Severity::kError ? "error" : "warning";
    EXPECT_NE(out.find("\"severity\":\"" + severity + "\""),
              std::string::npos)
        << f.file << " JSON: " << out;
    // Sanity: the report parses back far enough to re-find the file.
    EXPECT_NE(out.find(f.file), std::string::npos);
  }
}

TEST(LintToolTest, WithoutAnalyzeFixturesAreClean) {
  std::string path = std::string(PATHLOG_LINT_FIXTURES_DIR) +
                     "/pl017_nonterminating.plg";
  std::string out = RunLintTool(path);
  EXPECT_NE(out.find("clean"), std::string::npos) << out;
}

// ---- PL017 acceptance: the flagged program really runs away ---------

TEST(TerminationAnalysisTest, Pl017ProgramLoopsWithoutTheCheck) {
  // The pl017 fixture derives a fresh successor object for every nat,
  // each of which is itself a nat: without a wall-clock budget the
  // engine would invent objects forever. The analysis proves this
  // statically (PL017, error) — and the deadline demonstrates it
  // dynamically.
  std::string source = ReadFile(std::string(PATHLOG_LINT_FIXTURES_DIR) +
                                "/pl017_nonterminating.plg");

  DatabaseOptions opts;
  opts.engine.max_wall_ms = 200;
  Database db(opts);
  ASSERT_TRUE(db.Load(source).ok());

  LintReport report = db.Lint();
  const Diagnostic* d = FindCode(report, LintCode::kNonTermination);
  ASSERT_NE(d, nullptr) << report.ToString("<pl017>");
  EXPECT_EQ(d->severity, Severity::kError);

  Status st = db.Materialize();
  ASSERT_FALSE(st.ok()) << "materialisation was expected to run away";
  EXPECT_TRUE(st.code() == StatusCode::kDeadlineExceeded ||
              st.code() == StatusCode::kResourceExhausted)
      << st;
}

// ---- Database::Lint runs the analyses over the store ----------------

TEST(DatabaseLintTest, StoreFactsSeedTheAnalyses) {
  // `age` has extensional facts only (no program clause): with store
  // seeding, reading it is not dead, and its observed integer sort
  // collides with the string a rule derives into the same method.
  Database db;
  ASSERT_TRUE(db.Load(R"(
    alice[age->30].
    X[age->"old"] <- X[retired->1].
    bob[retired->1].
  )").ok());
  LintReport report = db.Lint();
  const Diagnostic* d = FindCode(report, LintCode::kSortConflict);
  ASSERT_NE(d, nullptr) << report.ToString("<db>");
  EXPECT_FALSE(report.Has(LintCode::kDeadRule)) << report.ToString("<db>");
}

}  // namespace
}  // namespace pathlog
