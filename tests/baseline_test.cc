// The baseline evaluators (join-plan, nested-loop) must agree with
// PathLog's navigational evaluator on the relational fragment.

#include "baseline/conjunctive.h"

#include <gtest/gtest.h>

#include <set>

#include "baseline/operators.h"
#include "baseline/translate.h"
#include "parser/parser.h"
#include "query/database.h"

namespace pathlog {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.Load(R"(
      automobile :: vehicle.
      mary : employee[age->30; city->newYork].
      john : employee[age->30; city->detroit].
      sue  : employee[age->40; city->newYork].
      mary[vehicles->>{car1,bike1}].
      john[vehicles->>{car2}].
      sue[vehicles->>{car3}].
      car1 : automobile[cylinders->4; color->red].
      car2 : automobile[cylinders->8; color->blue].
      car3 : automobile[cylinders->4; color->green].
      bike1 : vehicle[color->red].
    )").ok());
  }

  /// Sorted distinct rows of one variable from a PathLog query.
  std::vector<std::string> PathLogColumn(std::string_view query,
                                         const std::string& var) {
    Result<ResultSet> rs = db_.Query(query);
    EXPECT_TRUE(rs.ok()) << rs.status();
    return rs.ok() ? rs->Column(var, db_.store())
                   : std::vector<std::string>{};
  }

  std::vector<std::string> RelationColumn(const Relation& rel,
                                          const std::string& col) {
    std::set<std::string> names;
    std::optional<size_t> idx = rel.ColumnIndex(col);
    EXPECT_TRUE(idx.has_value()) << col;
    if (!idx) return {};
    for (const std::vector<Oid>& row : rel.rows()) {
      names.insert(db_.store().DisplayName(row[*idx]));
    }
    return std::vector<std::string>(names.begin(), names.end());
  }

  FlatQuery Flatten(std::string_view query_text) {
    Result<struct Query> q = ParseQuery(query_text);
    EXPECT_TRUE(q.ok()) << q.status();
    Result<FlatQuery> fq = FlattenLiterals(q->body, &db_.store());
    EXPECT_TRUE(fq.ok()) << fq.status();
    return fq.ok() ? *fq : FlatQuery{};
  }

  Database db_;
};

TEST_F(BaselineTest, OperatorsScanSelectJoinProject) {
  ObjectStore& s = db_.store();
  Oid employee = *s.FindSymbol("employee");
  Oid vehicles = *s.FindSymbol("vehicles");
  Oid color = *s.FindSymbol("color");
  Oid red = *s.FindSymbol("red");

  Relation emps = ScanClass(s, employee, "X");
  EXPECT_EQ(emps.NumRows(), 3u);
  Relation veh = ScanSet(s, vehicles, "X", "V");
  EXPECT_EQ(veh.NumRows(), 4u);
  Relation col = ScanScalar(s, color, "V", "C");
  EXPECT_EQ(col.NumRows(), 4u);

  Relation joined = HashJoin(HashJoin(emps, veh), col);
  EXPECT_EQ(joined.NumRows(), 4u);
  Relation reds = Select(joined, "C", red);
  EXPECT_EQ(reds.NumRows(), 2u);  // mary's car1 and bike1
  Relation owners = Project(reds, {"X"});
  EXPECT_EQ(RelationColumn(owners, "X"), (std::vector<std::string>{"mary"}));
}

TEST_F(BaselineTest, CrossProductWhenNoSharedColumns) {
  ObjectStore& s = db_.store();
  Relation a = ScanClass(s, *s.FindSymbol("employee"), "X");
  Relation b = ScanClass(s, *s.FindSymbol("automobile"), "Y");
  Relation cross = HashJoin(a, b);
  EXPECT_EQ(cross.NumRows(), 9u);
  EXPECT_EQ(cross.NumCols(), 2u);
}

TEST_F(BaselineTest, FlattenDecomposesPathsIntoAtoms) {
  FlatQuery fq = Flatten("?- X:employee..vehicles[color->red].");
  // member(X, employee), setmember(vehicles, X, $p0), scalar(color,$p0,red)
  ASSERT_EQ(fq.atoms.size(), 3u);
  EXPECT_EQ(fq.atoms[0].kind, BAtom::Kind::kMember);
  EXPECT_EQ(fq.atoms[1].kind, BAtom::Kind::kSetMember);
  EXPECT_EQ(fq.atoms[2].kind, BAtom::Kind::kScalar);
  EXPECT_EQ(fq.select, (std::vector<std::string>{"X"}));
}

TEST_F(BaselineTest, SelfFilterBecomesEquality) {
  FlatQuery fq = Flatten("?- X..vehicles.color[Z].");
  bool has_eq = false;
  for (const BAtom& a : fq.atoms) has_eq |= a.kind == BAtom::Kind::kEq;
  EXPECT_TRUE(has_eq);
}

TEST_F(BaselineTest, UnsupportedFeaturesRejected) {
  Result<struct Query> q1 = ParseQuery("?- X[friends->>p1..assistants].");
  ASSERT_TRUE(q1.ok());
  EXPECT_EQ(FlattenLiterals(q1->body, &db_.store()).status().code(),
            StatusCode::kInvalidArgument);

  Result<struct Query> q2 = ParseQuery("?- X.salary@(1994)[S].");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(FlattenLiterals(q2->body, &db_.store()).status().code(),
            StatusCode::kInvalidArgument);

  Result<struct Query> q3 = ParseQuery("?- X:employee, not X[age->30].");
  ASSERT_TRUE(q3.ok());
  EXPECT_EQ(FlattenLiterals(q3->body, &db_.store()).status().code(),
            StatusCode::kInvalidArgument);
}

// The three evaluators agree on the paper's queries.
TEST_F(BaselineTest, AllEvaluatorsAgreeOnPaperQueries) {
  const struct {
    const char* query;
    const char* var;
  } kCases[] = {
      // (1.1)/(1.2)/(1.3): colors of employees' automobiles.
      {"?- X:employee[vehicles->>{Y:automobile}], Y[color->Z].", "Z"},
      // (1.4)/(2.2): with the 4-cylinder restriction.
      {"?- X:employee..vehicles:automobile[cylinders->4].color[Z].", "Z"},
      // Owners of red vehicles.
      {"?- X:employee..vehicles[color->red].", "X"},
      // Two-attribute second dimension.
      {"?- X:employee[age->30; city->newYork]..vehicles.color[Z].", "Z"},
  };
  for (const auto& c : kCases) {
    std::vector<std::string> pathlog = PathLogColumn(c.query, c.var);
    FlatQuery fq = Flatten(c.query);
    Result<Relation> join = EvalJoinPlan(db_.store(), fq);
    ASSERT_TRUE(join.ok()) << c.query << ": " << join.status();
    Result<Relation> loop = EvalNestedLoop(db_.store(), fq);
    ASSERT_TRUE(loop.ok()) << c.query << ": " << loop.status();
    EXPECT_EQ(RelationColumn(*join, c.var), pathlog) << c.query;
    EXPECT_EQ(RelationColumn(*loop, c.var), pathlog) << c.query;
  }
}

TEST_F(BaselineTest, ConstantsInAtomsHandled) {
  FlatQuery fq = Flatten("?- mary[vehicles->>{V}].");
  Result<Relation> join = EvalJoinPlan(db_.store(), fq);
  ASSERT_TRUE(join.ok());
  EXPECT_EQ(RelationColumn(*join, "V"),
            (std::vector<std::string>{"bike1", "car1"}));
  Result<Relation> loop = EvalNestedLoop(db_.store(), fq);
  ASSERT_TRUE(loop.ok());
  EXPECT_EQ(RelationColumn(*loop, "V"),
            (std::vector<std::string>{"bike1", "car1"}));
}

TEST_F(BaselineTest, EmptyAnswers) {
  FlatQuery fq = Flatten("?- X:employee[age->99].");
  Result<Relation> join = EvalJoinPlan(db_.store(), fq);
  ASSERT_TRUE(join.ok());
  EXPECT_EQ(join->NumRows(), 0u);
  Result<Relation> loop = EvalNestedLoop(db_.store(), fq);
  ASSERT_TRUE(loop.ok());
  EXPECT_EQ(loop->NumRows(), 0u);
}

TEST_F(BaselineTest, RelationToStringBounded) {
  ObjectStore& s = db_.store();
  Relation emps = ScanClass(s, *s.FindSymbol("employee"), "X");
  std::string text = emps.ToString(s, 2);
  EXPECT_NE(text.find("more rows"), std::string::npos);
}

}  // namespace
}  // namespace pathlog
