// The cost-based conjunction planner: ordering, estimates, safety, and
// end-to-end effect through Database::ExplainQuery.

#include "query/planner.h"

#include <gtest/gtest.h>

#include "ast/printer.h"
#include "base/strings.h"
#include "obs/profile.h"
#include "parser/parser.h"
#include "query/database.h"
#include "workload/company.h"

namespace pathlog {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CompanyConfig cfg;
    cfg.num_employees = 200;
    cfg.manager_fraction = 0.05;  // 10 managers, 190 plain employees
    GenerateCompany(&db_.store(), cfg);
  }

  std::vector<Literal> Plan(std::string_view query_text) {
    Result<struct Query> q = ParseQuery(query_text);
    EXPECT_TRUE(q.ok()) << q.status();
    std::vector<Literal> body = q->body;
    Status st = PlanConjunction(&body, db_.store(), nullptr);
    EXPECT_TRUE(st.ok()) << st;
    return body;
  }

  double Cost(std::string_view ref_text,
              const std::set<std::string>& bound = {}) {
    Result<RefPtr> r = ParseRef(ref_text);
    EXPECT_TRUE(r.ok()) << r.status();
    return EstimateLiteralCost(**r, bound, db_.store());
  }

  Database db_;
};

TEST_F(PlannerTest, BoundAnchorsAreCheapest) {
  // Each navigation step from a bound anchor adds 1 to the estimate.
  EXPECT_EQ(Cost("emp0[age->A]"), 2.0);
  EXPECT_EQ(Cost("X[age->A]", {"X"}), 2.0);
  EXPECT_EQ(Cost("emp0..vehicles.color[Z]"), 4.0);
  EXPECT_LT(Cost("emp0[age->A]"), Cost("X:manager"));
}

TEST_F(PlannerTest, ClassExtentsEstimateByMembers) {
  double managers = Cost("X:manager");
  double employees = Cost("X:employee");
  EXPECT_LT(managers, employees);
  EXPECT_EQ(managers,
            static_cast<double>(
                db_.store().Members(*db_.store().FindSymbol("manager"))
                    .size()));
}

TEST_F(PlannerTest, UnknownAnchorCostsTheUniverse) {
  EXPECT_EQ(Cost("X[self->Y]"),
            static_cast<double>(db_.store().UniverseSize()));
}

TEST_F(PlannerTest, SmallExtentGoesFirst) {
  // manager extent (10) is far smaller than the age method (200
  // entries): the planner must start from the managers.
  std::vector<Literal> plan =
      Plan("?- X[age->A], X:manager.");
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(ToString(*plan[0].ref), "X:manager");
}

TEST_F(PlannerTest, BindingPropagatesIntoLaterEstimates) {
  // Once X is bound by the first literal, X[age->A] costs 1 and beats
  // scanning another extent.
  std::vector<Literal> plan =
      Plan("?- Y:employee, X:manager, X[age->A].");
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(ToString(*plan[0].ref), "X:manager");
  EXPECT_EQ(ToString(*plan[1].ref), "X[age->A]");
}

TEST_F(PlannerTest, NegationStaysSafe) {
  std::vector<Literal> plan =
      Plan("?- not X[age->A], X:manager.");
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_FALSE(plan[0].negated);
  EXPECT_TRUE(plan[1].negated);
}

TEST_F(PlannerTest, UnsafeConjunctionRejected) {
  Result<struct Query> q =
      ParseQuery("?- X[friends->>Y..assistants].");
  ASSERT_TRUE(q.ok());
  std::vector<Literal> body = q->body;
  EXPECT_EQ(PlanConjunction(&body, db_.store(), nullptr).code(),
            StatusCode::kUnsafeRule);
}

TEST_F(PlannerTest, PlansProduceSameAnswersAsAnyOrder) {
  // Differential: both orderings of a two-literal query agree with the
  // planner's choice.
  Result<ResultSet> a = db_.Query("?- X:manager, X[age->A].");
  Result<ResultSet> b = db_.Query("?- X[age->A], X:manager.");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->rows(), b->rows());
  EXPECT_EQ(a->size(), 10u);
}

// KNOWN GAP: DriverCardinality estimates a runtime-bound scalar value
// with the *average* inverted-index bucket (entries / distinct
// values), which is blind to skew. With one hot value holding nearly
// every entry, the average undersells the real bucket enough to
// misrank access paths: here the planner drives `Y[city->C]`
// (estimate 50) ahead of the `Y:resident` extent (60 members) even
// though the hot bucket actually yields 99 rows. A histogram- or
// top-k-aware estimator would fix the ranking; until then the
// profiler's estimate-vs-actual table is how the misrank is seen.
TEST(PlannerSkewTest, AverageBucketEstimateMisranksSkewedValues) {
  Database db;
  Profiler profiler;
  ObsSinks sinks;
  sinks.profiler = &profiler;
  db.SetObsSinks(sinks);
  std::string program = "hub[site->metro].\noutlier[city->village].\n";
  for (int i = 0; i < 99; ++i) {
    program += StrCat("m", i, "[city->metro].\n");
  }
  for (int i = 0; i < 60; ++i) {
    program += StrCat("m", i, " : resident.\n");
  }
  ASSERT_TRUE(db.Load(program).ok());

  // Plan order: hub[site->C] binds C, then the planner compares
  // Y[city->C] (average bucket: 100 entries / 2 values = 50) against
  // Y:resident (extent 60) and picks the skew-blind estimate.
  Result<struct Query> q =
      ParseQuery("?- hub[site->C], Y[city->C], Y:resident.");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<Literal> body = q->body;
  std::vector<double> estimates;
  ASSERT_TRUE(
      PlanConjunction(&body, db.store(), nullptr, &estimates).ok());
  ASSERT_EQ(body.size(), 3u);
  EXPECT_EQ(ToString(*body[1].ref), "Y[city->C]");
  EXPECT_EQ(ToString(*body[2].ref), "Y:resident");
  EXPECT_DOUBLE_EQ(estimates[1], 50.0);

  // Run it with the profiler attached: the hot bucket's actual
  // cardinality (99) dwarfs the estimate and exceeds the extent the
  // planner passed over — the documented misranking, made visible.
  Result<ResultSet> rs = db.Query("?- hub[site->C], Y[city->C], Y:resident.");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->size(), 60u);
  bool found = false;
  for (const Profiler::LiteralProfile& l : profiler.LiteralProfiles()) {
    if (l.literal == "Y[city->C]") {
      found = true;
      EXPECT_DOUBLE_EQ(l.estimated, 50.0);
      EXPECT_EQ(l.actual, 99u);
      EXPECT_GT(static_cast<double>(l.actual), l.estimated * 1.9);
    }
  }
  EXPECT_TRUE(found) << db.ProfileReport();
}

TEST_F(PlannerTest, ExplainQueryShowsOrderedPlan) {
  Result<std::string> plan =
      db_.ExplainQuery("?- X[age->A], X:manager.");
  ASSERT_TRUE(plan.ok()) << plan.status();
  size_t manager_pos = plan->find("X:manager");
  size_t age_pos = plan->find("X[age->A]");
  ASSERT_NE(manager_pos, std::string::npos);
  ASSERT_NE(age_pos, std::string::npos);
  EXPECT_LT(manager_pos, age_pos);
  EXPECT_NE(plan->find("estimated driver cardinality"), std::string::npos);
}

}  // namespace
}  // namespace pathlog
