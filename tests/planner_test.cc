// The cost-based conjunction planner: ordering, estimates, safety, and
// end-to-end effect through Database::ExplainQuery.

#include "query/planner.h"

#include <gtest/gtest.h>

#include "ast/analysis.h"
#include "ast/printer.h"
#include "base/strings.h"
#include "obs/profile.h"
#include "parser/parser.h"
#include "query/database.h"
#include "workload/company.h"

namespace pathlog {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CompanyConfig cfg;
    cfg.num_employees = 200;
    cfg.manager_fraction = 0.05;  // 10 managers, 190 plain employees
    GenerateCompany(&db_.store(), cfg);
  }

  std::vector<Literal> Plan(std::string_view query_text) {
    Result<struct Query> q = ParseQuery(query_text);
    EXPECT_TRUE(q.ok()) << q.status();
    std::vector<Literal> body = q->body;
    Status st = PlanConjunction(&body, db_.store(), nullptr);
    EXPECT_TRUE(st.ok()) << st;
    return body;
  }

  double Cost(std::string_view ref_text,
              const std::set<std::string>& bound = {}) {
    Result<RefPtr> r = ParseRef(ref_text);
    EXPECT_TRUE(r.ok()) << r.status();
    return EstimateLiteralCost(**r, bound, db_.store());
  }

  Database db_;
};

TEST_F(PlannerTest, BoundAnchorsAreCheapest) {
  // Each navigation step from a bound anchor adds 1 to the estimate.
  EXPECT_EQ(Cost("emp0[age->A]"), 2.0);
  EXPECT_EQ(Cost("X[age->A]", {"X"}), 2.0);
  EXPECT_EQ(Cost("emp0..vehicles.color[Z]"), 4.0);
  EXPECT_LT(Cost("emp0[age->A]"), Cost("X:manager"));
}

TEST_F(PlannerTest, ClassExtentsEstimateByMembers) {
  double managers = Cost("X:manager");
  double employees = Cost("X:employee");
  EXPECT_LT(managers, employees);
  EXPECT_EQ(managers,
            static_cast<double>(
                db_.store().Members(*db_.store().FindSymbol("manager"))
                    .size()));
}

TEST_F(PlannerTest, UnknownAnchorCostsTheUniverse) {
  EXPECT_EQ(Cost("X[self->Y]"),
            static_cast<double>(db_.store().UniverseSize()));
}

TEST_F(PlannerTest, SmallExtentGoesFirst) {
  // manager extent (10) is far smaller than the age method (200
  // entries): the planner must start from the managers.
  std::vector<Literal> plan =
      Plan("?- X[age->A], X:manager.");
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(ToString(*plan[0].ref), "X:manager");
}

TEST_F(PlannerTest, BindingPropagatesIntoLaterEstimates) {
  // Once X is bound by the first literal, X[age->A] costs 1 and beats
  // scanning another extent.
  std::vector<Literal> plan =
      Plan("?- Y:employee, X:manager, X[age->A].");
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(ToString(*plan[0].ref), "X:manager");
  EXPECT_EQ(ToString(*plan[1].ref), "X[age->A]");
}

TEST_F(PlannerTest, NegationStaysSafe) {
  std::vector<Literal> plan =
      Plan("?- not X[age->A], X:manager.");
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_FALSE(plan[0].negated);
  EXPECT_TRUE(plan[1].negated);
}

TEST_F(PlannerTest, UnsafeConjunctionRejected) {
  Result<struct Query> q =
      ParseQuery("?- X[friends->>Y..assistants].");
  ASSERT_TRUE(q.ok());
  std::vector<Literal> body = q->body;
  EXPECT_EQ(PlanConjunction(&body, db_.store(), nullptr).code(),
            StatusCode::kUnsafeRule);
}

TEST_F(PlannerTest, PlansProduceSameAnswersAsAnyOrder) {
  // Differential: both orderings of a two-literal query agree with the
  // planner's choice.
  Result<ResultSet> a = db_.Query("?- X:manager, X[age->A].");
  Result<ResultSet> b = db_.Query("?- X[age->A], X:manager.");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->rows(), b->rows());
  EXPECT_EQ(a->size(), 10u);
}

// FIXED (was the pinned "known gap"): DriverCardinality used to
// estimate a runtime-bound scalar value with the *average*
// inverted-index bucket (entries / distinct values), blind to skew:
// with one hot value holding 99 of 100 entries the average (50)
// undersold the real bucket enough to drive `Y[city->C]` ahead of the
// smaller `Y:resident` extent (60). The store now keeps exact top-k
// heavy-hitter statistics per method and the planner prices a
// runtime-bound probe at the upper quantile of those buckets, so the
// extent drives first and every estimate lands within 2x of the
// observed per-probe cardinality. The skew-blind estimator survives
// behind PlannerStatsMode::kAverageBucket and still reproduces the
// historical misrank, byte for byte.
TEST(PlannerSkewTest, SkewStatisticsRankTheExtentBeforeTheHotBucket) {
  Database db;
  Profiler profiler;
  ObsSinks sinks;
  sinks.profiler = &profiler;
  db.SetObsSinks(sinks);
  std::string program = "hub[site->metro].\noutlier[city->village].\n";
  for (int i = 0; i < 99; ++i) {
    program += StrCat("m", i, "[city->metro].\n");
  }
  for (int i = 0; i < 60; ++i) {
    program += StrCat("m", i, " : resident.\n");
  }
  ASSERT_TRUE(db.Load(program).ok());

  // Skew-aware (default) plan: hub[site->C] binds C, then Y[city->C]
  // is priced at the hot bucket (99), so the Y:resident extent (60)
  // drives and the city probe degrades to a per-tuple check.
  Result<struct Query> q =
      ParseQuery("?- hub[site->C], Y[city->C], Y:resident.");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<Literal> body = q->body;
  std::vector<double> estimates;
  ASSERT_TRUE(
      PlanConjunction(&body, db.store(), nullptr, &estimates).ok());
  ASSERT_EQ(body.size(), 3u);
  EXPECT_EQ(ToString(*body[0].ref), "hub[site->C]");
  EXPECT_EQ(ToString(*body[1].ref), "Y:resident");
  EXPECT_EQ(ToString(*body[2].ref), "Y[city->C]");
  EXPECT_DOUBLE_EQ(estimates[1], 60.0);

  // The skew-blind estimator is still selectable and still misranks:
  // the average bucket (100 / 2 = 50) undercuts the extent.
  std::vector<Literal> blind = q->body;
  std::vector<double> blind_estimates;
  ASSERT_TRUE(PlanConjunction(&blind, db.store(), nullptr, &blind_estimates,
                              nullptr, PlannerStatsMode::kAverageBucket)
                  .ok());
  ASSERT_EQ(blind.size(), 3u);
  EXPECT_EQ(ToString(*blind[1].ref), "Y[city->C]");
  EXPECT_EQ(ToString(*blind[2].ref), "Y:resident");
  EXPECT_DOUBLE_EQ(blind_estimates[1], 50.0);

  // Run the query with the profiler attached: the answers are the
  // same as ever (60 residents of the hot metro), and the profiler's
  // estimate-vs-actual table — the oracle that used to expose the
  // misrank — now shows every literal's estimate within 2x of its
  // observed per-probe cardinality.
  Result<ResultSet> rs = db.Query("?- hub[site->C], Y[city->C], Y:resident.");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->size(), 60u);
  std::vector<Profiler::LiteralProfile> lits = profiler.LiteralProfiles();
  ASSERT_EQ(lits.size(), 3u) << db.ProfileReport();
  for (const Profiler::LiteralProfile& l : lits) {
    ASSERT_GT(l.invocations, 0u) << l.literal;
    double actual_per_probe = l.ActualPerInvocation();
    EXPECT_LE(l.estimated, std::max(actual_per_probe, 1.0) * 2.0)
        << l.literal << "\n" << db.ProfileReport();
    EXPECT_GE(l.estimated * 2.0, actual_per_probe)
        << l.literal << "\n" << db.ProfileReport();
  }
  for (const Profiler::LiteralProfile& l : lits) {
    if (l.literal == "Y:resident") {
      EXPECT_DOUBLE_EQ(l.estimated, 60.0);
      EXPECT_EQ(l.actual, 60u);
      EXPECT_EQ(l.invocations, 1u);
    }
    if (l.literal == "Y[city->C]") {
      // Re-entered once per resident; each probe is a bound check.
      EXPECT_EQ(l.invocations, 60u);
      EXPECT_EQ(l.actual, 60u);
    }
  }
}

// The set-valued twin: a runtime-bound member used to have *no*
// runtime-bound estimate at all — it fell through to the full
// SetGroups(m) count, so a cheap one-bucket probe was priced as a
// whole-method scan and the planner drove a larger class extent
// instead. With per-member heavy-hitter stats the probe is priced at
// its hot bucket, which here beats the extent.
TEST(PlannerSkewTest, SetMemberStatisticsPriceTheProbeNotTheScan) {
  Database db;
  std::string program = "hub[site->metro].\n";
  // 40 groups contain the hot member; 160 more groups hold unique
  // members, so the method has 200 groups and 161 distinct members.
  for (int i = 0; i < 40; ++i) {
    program += StrCat("g", i, "[likes->>{metro}].\n");
    program += StrCat("g", i, " : resident.\n");
  }
  for (int i = 0; i < 160; ++i) {
    program += StrCat("h", i, "[likes->>{v", i, "}].\n");
  }
  for (int i = 0; i < 60; ++i) {
    program += StrCat("h", i, " : resident.\n");
  }
  ASSERT_TRUE(db.Load(program).ok());

  Result<struct Query> q =
      ParseQuery("?- hub[site->C], Y[likes->>{C}], Y:resident.");
  ASSERT_TRUE(q.ok()) << q.status();

  // Skew-aware: the member probe is priced at the heaviest bucket
  // (40), beating the resident extent (100), so it drives.
  std::vector<Literal> body = q->body;
  std::vector<double> estimates;
  ASSERT_TRUE(
      PlanConjunction(&body, db.store(), nullptr, &estimates).ok());
  ASSERT_EQ(body.size(), 3u);
  EXPECT_EQ(ToString(*body[1].ref), "Y[likes->>{C}]");
  EXPECT_EQ(ToString(*body[2].ref), "Y:resident");
  EXPECT_DOUBLE_EQ(estimates[1], 40.0);

  // Skew-blind (historical behaviour): no runtime-bound member
  // estimate, the literal costs the full 200-group scan, and the
  // planner drives the 100-member extent instead.
  std::vector<Literal> blind = q->body;
  std::vector<double> blind_estimates;
  ASSERT_TRUE(PlanConjunction(&blind, db.store(), nullptr, &blind_estimates,
                              nullptr, PlannerStatsMode::kAverageBucket)
                  .ok());
  ASSERT_EQ(blind.size(), 3u);
  EXPECT_EQ(ToString(*blind[1].ref), "Y:resident");
  EXPECT_EQ(ToString(*blind[2].ref), "Y[likes->>{C}]");
  EXPECT_DOUBLE_EQ(blind_estimates[1], 100.0);
  // Once Y is bound by the extent, the set literal is a bound check.
  EXPECT_DOUBLE_EQ(blind_estimates[2], 2.0);

  // Either plan answers identically: the 40 metro-liking residents.
  Result<ResultSet> rs =
      db.Query("?- hub[site->C], Y[likes->>{C}], Y:resident.");
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->size(), 40u);
}

TEST_F(PlannerTest, EstimatesAlignWithThePostReorderBody) {
  // Regression: the `estimates` out-param (and the cost log) must be
  // reported in *post-reorder* literal order — the order the body is
  // returned in and the order RunQuery executes — not in the order the
  // query was written. Write the body backwards so any source-order
  // reporting misaligns every entry.
  Result<struct Query> q =
      ParseQuery("?- Y:employee, X[age->A], X:manager.");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<Literal> body = q->body;
  std::vector<std::string> cost_log;
  std::vector<double> estimates;
  ASSERT_TRUE(
      PlanConjunction(&body, db_.store(), &cost_log, &estimates).ok());
  ASSERT_EQ(body.size(), 3u);
  ASSERT_EQ(estimates.size(), 3u);
  ASSERT_EQ(cost_log.size(), 3u);
  EXPECT_EQ(ToString(*body[0].ref), "X:manager");  // reordered

  // Each estimate must be the cost of the literal *at that plan
  // position*, under the bindings accumulated by the literals before
  // it — recomputed independently here.
  std::set<std::string> bound;
  for (size_t i = 0; i < body.size(); ++i) {
    EXPECT_DOUBLE_EQ(estimates[i],
                     EstimateLiteralCost(*body[i].ref, bound, db_.store()))
        << "plan position " << i << ": " << ToString(*body[i].ref);
    EXPECT_NE(cost_log[i].find(ToString(body[i])), std::string::npos)
        << "cost log line " << i << " is not the literal at plan position "
        << i << ": " << cost_log[i];
    if (!body[i].negated) {
      for (const std::string& v : VarsOf(*body[i].ref)) bound.insert(v);
    }
  }

  // And the profiler consumes the same alignment: each literal's
  // recorded estimate equals the estimate at its plan position.
  Profiler profiler;
  ObsSinks sinks;
  sinks.profiler = &profiler;
  db_.SetObsSinks(sinks);
  Result<ResultSet> rs = db_.Query("?- Y:employee, X[age->A], X:manager.");
  ASSERT_TRUE(rs.ok()) << rs.status();
  std::vector<Profiler::LiteralProfile> lits = profiler.LiteralProfiles();
  ASSERT_EQ(lits.size(), 3u);
  for (const Profiler::LiteralProfile& l : lits) {
    bool matched = false;
    for (size_t i = 0; i < body.size(); ++i) {
      if (l.literal == ToString(body[i])) {
        matched = true;
        EXPECT_DOUBLE_EQ(l.estimated, estimates[i]) << l.literal;
      }
    }
    EXPECT_TRUE(matched) << l.literal;
  }
  db_.SetObsSinks(ObsSinks{});
}

TEST_F(PlannerTest, ExplainQueryShowsOrderedPlan) {
  Result<std::string> plan =
      db_.ExplainQuery("?- X[age->A], X:manager.");
  ASSERT_TRUE(plan.ok()) << plan.status();
  size_t manager_pos = plan->find("X:manager");
  size_t age_pos = plan->find("X[age->A]");
  ASSERT_NE(manager_pos, std::string::npos);
  ASSERT_NE(age_pos, std::string::npos);
  EXPECT_LT(manager_pos, age_pos);
  EXPECT_NE(plan->find("estimated driver cardinality"), std::string::npos);
}

}  // namespace
}  // namespace pathlog
