// Tests for the binding-enumeration evaluator (eval/ref_eval): the
// query-answering counterpart of Definition 4, including its documented
// active-domain deviations.

#include "eval/ref_eval.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "parser/parser.h"
#include "semantics/structure.h"
#include "store/object_store.h"

namespace pathlog {
namespace {

class RefEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_.InternSymbol(kSelfMethodName);
    // A small company: two employees with vehicles, one automobile.
    emp_ = store_.InternSymbol("employee");
    car_class_ = store_.InternSymbol("automobile");
    veh_class_ = store_.InternSymbol("vehicle");
    ASSERT_TRUE(store_.AddIsa(car_class_, veh_class_).ok());

    mary_ = store_.InternSymbol("mary");
    john_ = store_.InternSymbol("john");
    car1_ = store_.InternSymbol("car1");
    bike1_ = store_.InternSymbol("bike1");
    red_ = store_.InternSymbol("red");
    blue_ = store_.InternSymbol("blue");

    Oid vehicles = store_.InternSymbol("vehicles");
    Oid color = store_.InternSymbol("color");
    Oid cylinders = store_.InternSymbol("cylinders");
    Oid age = store_.InternSymbol("age");

    ASSERT_TRUE(store_.AddIsa(mary_, emp_).ok());
    ASSERT_TRUE(store_.AddIsa(john_, emp_).ok());
    ASSERT_TRUE(store_.AddIsa(car1_, car_class_).ok());
    ASSERT_TRUE(store_.AddIsa(bike1_, veh_class_).ok());
    store_.AddSetMember(vehicles, mary_, {}, car1_);
    store_.AddSetMember(vehicles, mary_, {}, bike1_);
    store_.AddSetMember(vehicles, john_, {}, bike1_);
    ASSERT_TRUE(store_.SetScalar(color, car1_, {}, red_).ok());
    ASSERT_TRUE(store_.SetScalar(color, bike1_, {}, blue_).ok());
    ASSERT_TRUE(
        store_.SetScalar(cylinders, car1_, {}, store_.InternInt(4)).ok());
    ASSERT_TRUE(store_.SetScalar(age, mary_, {}, store_.InternInt(30)).ok());
    ASSERT_TRUE(store_.SetScalar(age, john_, {}, store_.InternInt(40)).ok());
  }

  /// All (object, bindings) solutions, as display-name maps with "_" for
  /// the denoted object. Pass use_inverted_indexes=false to force
  /// enumerate-and-compare evaluation.
  std::set<std::map<std::string, std::string>> Solutions(
      std::string_view src, bool use_inverted_indexes = true) {
    Result<RefPtr> r = ParseRef(src);
    EXPECT_TRUE(r.ok()) << r.status();
    std::set<std::map<std::string, std::string>> out;
    if (!r.ok()) return out;
    SemanticStructure I(store_);
    RefEvaluator eval(I, use_inverted_indexes);
    Bindings b;
    Result<bool> res = eval.Enumerate(**r, &b, [&](Oid o) -> Result<bool> {
      std::map<std::string, std::string> row;
      row["_"] = store_.DisplayName(o);
      for (const auto& [var, oid] : b.ToValuation()) {
        row[var] = store_.DisplayName(oid);
      }
      out.insert(std::move(row));
      return true;
    });
    EXPECT_TRUE(res.ok()) << src << ": " << res.status();
    return out;
  }

  bool Sat(std::string_view src) {
    Result<RefPtr> r = ParseRef(src);
    EXPECT_TRUE(r.ok()) << r.status();
    SemanticStructure I(store_);
    RefEvaluator eval(I);
    Bindings b;
    Result<bool> res = eval.Satisfiable(**r, &b);
    EXPECT_TRUE(res.ok()) << src << ": " << res.status();
    return res.ok() && *res;
  }

  ObjectStore store_;
  Oid emp_, car_class_, veh_class_, mary_, john_, car1_, bike1_, red_, blue_;
};

using Row = std::map<std::string, std::string>;

TEST_F(RefEvalTest, GroundPath) {
  auto sols = Solutions("car1.color");
  EXPECT_EQ(sols, (std::set<Row>{{{"_", "red"}}}));
}

TEST_F(RefEvalTest, UndefinedPathHasNoSolutions) {
  store_.InternSymbol("spouse");
  EXPECT_TRUE(Solutions("mary.spouse").empty());
  EXPECT_FALSE(Sat("mary.spouse"));
}

TEST_F(RefEvalTest, VariableBoundByClassExtent) {
  auto sols = Solutions("X:employee");
  EXPECT_EQ(sols, (std::set<Row>{{{"_", "mary"}, {"X", "mary"}},
                                 {{"_", "john"}, {"X", "john"}}}));
}

TEST_F(RefEvalTest, SelectorBindsResult) {
  auto sols = Solutions("mary..vehicles.color[Z]");
  EXPECT_EQ(sols, (std::set<Row>{{{"_", "red"}, {"Z", "red"}},
                                 {{"_", "blue"}, {"Z", "blue"}}}));
}

TEST_F(RefEvalTest, TwoDimensionalPathFromThePaper) {
  // Colors of mary-aged-30's 4-cylinder automobiles.
  auto sols =
      Solutions("X:employee[age->30]..vehicles:automobile[cylinders->4]"
                ".color[Z]");
  EXPECT_EQ(sols, (std::set<Row>{
                      {{"_", "red"}, {"X", "mary"}, {"Z", "red"}}}));
}

TEST_F(RefEvalTest, UnboundReceiverDrivenByMethodExtent) {
  // X.color[red]: receivers found through the color method's entries.
  auto sols = Solutions("X.color[self->red]");
  EXPECT_EQ(sols, (std::set<Row>{{{"_", "red"}, {"X", "car1"}}}));
}

TEST_F(RefEvalTest, UnboundVariableMethod) {
  // Which scalar methods lead from car1 to red?
  auto sols = Solutions("car1.M[self->red]");
  EXPECT_EQ(sols, (std::set<Row>{{{"_", "red"}, {"M", "color"}}}));
}

TEST_F(RefEvalTest, ClassVariableEnumeratesAncestors) {
  auto sols = Solutions("car1:C");
  EXPECT_EQ(sols, (std::set<Row>{{{"_", "car1"}, {"C", "automobile"}},
                                 {{"_", "car1"}, {"C", "vehicle"}}}));
}

TEST_F(RefEvalTest, SetEnumFilterBindsMembers) {
  auto sols = Solutions("mary[vehicles->>{V}]");
  EXPECT_EQ(sols, (std::set<Row>{{{"_", "mary"}, {"V", "car1"}},
                                 {{"_", "mary"}, {"V", "bike1"}}}));
}

TEST_F(RefEvalTest, SetEnumFilterWithNestedProperty) {
  // "access successively all assistants in this set" — here vehicles
  // with a property: members that are automobiles.
  auto sols = Solutions("mary[vehicles->>{V:automobile}]");
  EXPECT_EQ(sols, (std::set<Row>{{{"_", "mary"}, {"V", "car1"}}}));
}

TEST_F(RefEvalTest, SetRefFilterSubset) {
  Oid likes = store_.InternSymbol("likes");
  store_.AddSetMember(likes, john_, {}, car1_);
  store_.AddSetMember(likes, john_, {}, bike1_);
  // mary's vehicles {car1,bike1} are all liked by john.
  EXPECT_TRUE(Sat("john[likes->>mary..vehicles]"));
  // john's vehicles {bike1} are not a superset of mary's.
  EXPECT_FALSE(Sat("john[vehicles->>mary..vehicles]"));
}

TEST_F(RefEvalTest, ActiveDomainEmptySetRefFails) {
  // Deviation from literal Definition 4: an empty specified set is NOT
  // vacuously contained.
  store_.InternSymbol("enemies");
  EXPECT_FALSE(Sat("john[likes->>mary..enemies]"));
}

TEST_F(RefEvalTest, SetRefWithUnboundVarsIsUnsafe) {
  store_.InternSymbol("likes");
  Result<RefPtr> r = ParseRef("john[likes->>Y..vehicles]");
  ASSERT_TRUE(r.ok());
  SemanticStructure I(store_);
  RefEvaluator eval(I);
  Bindings b;
  Result<bool> res = eval.Satisfiable(**r, &b);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kUnsafeRule);
}

TEST_F(RefEvalTest, NestedPathInFilterValue) {
  Oid boss = store_.InternSymbol("boss");
  Oid city = store_.InternSymbol("city");
  Oid ny = store_.InternSymbol("newYork");
  ASSERT_TRUE(store_.SetScalar(boss, john_, {}, mary_).ok());
  ASSERT_TRUE(store_.SetScalar(city, john_, {}, ny).ok());
  ASSERT_TRUE(store_.SetScalar(city, mary_, {}, ny).ok());
  // (2.3): same city as the boss.
  auto sols = Solutions("X:employee[city->X.boss.city]");
  EXPECT_EQ(sols, (std::set<Row>{{{"_", "john"}, {"X", "john"}}}));
}

TEST_F(RefEvalTest, EvalGroundCollectsSorted) {
  Result<RefPtr> r = ParseRef("mary..vehicles");
  ASSERT_TRUE(r.ok());
  SemanticStructure I(store_);
  RefEvaluator eval(I);
  Bindings b;
  Result<std::vector<Oid>> v = eval.EvalGround(**r, &b);
  ASSERT_TRUE(v.ok());
  std::vector<Oid> expected{std::min(car1_, bike1_), std::max(car1_, bike1_)};
  EXPECT_EQ(*v, expected);
}

TEST_F(RefEvalTest, EvalGroundRejectsUnboundVars) {
  Result<RefPtr> r = ParseRef("X..vehicles");
  ASSERT_TRUE(r.ok());
  SemanticStructure I(store_);
  RefEvaluator eval(I);
  Bindings b;
  EXPECT_EQ(eval.EvalGround(**r, &b).status().code(),
            StatusCode::kUnsafeRule);
}

TEST_F(RefEvalTest, BindingsRestoredAfterEnumeration) {
  Result<RefPtr> r = ParseRef("X:employee[age->A]");
  ASSERT_TRUE(r.ok());
  SemanticStructure I(store_);
  RefEvaluator eval(I);
  Bindings b;
  int count = 0;
  Result<bool> res = eval.Enumerate(**r, &b, [&](Oid) -> Result<bool> {
    ++count;
    return true;
  });
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(count, 2);
  EXPECT_EQ(b.size(), 0u);
}

TEST_F(RefEvalTest, EarlyStopPropagates) {
  Result<RefPtr> r = ParseRef("X:employee");
  ASSERT_TRUE(r.ok());
  SemanticStructure I(store_);
  RefEvaluator eval(I);
  Bindings b;
  int count = 0;
  Result<bool> res = eval.Enumerate(**r, &b, [&](Oid) -> Result<bool> {
    ++count;
    return false;  // stop after the first
  });
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(*res);
  EXPECT_EQ(count, 1);
}

TEST_F(RefEvalTest, PreBoundVariablesRestrict) {
  Result<RefPtr> r = ParseRef("X:employee[age->A]");
  ASSERT_TRUE(r.ok());
  SemanticStructure I(store_);
  RefEvaluator eval(I);
  Bindings b;
  b.Bind("X", john_);
  std::set<std::string> ages;
  Result<bool> res = eval.Enumerate(**r, &b, [&](Oid) -> Result<bool> {
    ages.insert(store_.DisplayName(*b.Get("A")));
    return true;
  });
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(ages, (std::set<std::string>{"40"}));
}

TEST_F(RefEvalTest, MethodArgumentsMatchAndBind) {
  Oid salary = store_.InternSymbol("salary");
  Oid y94 = store_.InternInt(1994);
  Oid y95 = store_.InternInt(1995);
  ASSERT_TRUE(store_.SetScalar(salary, john_, {y94},
                               store_.InternInt(100)).ok());
  ASSERT_TRUE(store_.SetScalar(salary, john_, {y95},
                               store_.InternInt(200)).ok());
  auto sols = Solutions("john.salary@(1994)");
  EXPECT_EQ(sols, (std::set<Row>{{{"_", "100"}}}));
  // Unbound argument variable enumerates stored invocations.
  auto sols2 = Solutions("john.salary@(Y)");
  EXPECT_EQ(sols2, (std::set<Row>{{{"_", "100"}, {"Y", "1994"}},
                                  {{"_", "200"}, {"Y", "1995"}}}));
}

TEST_F(RefEvalTest, PathOverSetValuedBaseFlattens) {
  auto sols = Solutions("mary..vehicles.color");
  EXPECT_EQ(sols, (std::set<Row>{{{"_", "red"}}, {{"_", "blue"}}}));
}

TEST_F(RefEvalTest, BareUnboundVariableScansUniverse) {
  auto sols = Solutions("X[self->mary]");
  EXPECT_EQ(sols, (std::set<Row>{{{"_", "mary"}, {"X", "mary"}}}));
}

TEST_F(RefEvalTest, DuplicatePathDerivationsEmitOnce) {
  // Regression: a path denoting one object through two derivations
  // (two of mary's vehicles sharing a colour) used to emit it twice.
  Oid color = *store_.FindSymbol("color");
  Oid vehicles = *store_.FindSymbol("vehicles");
  Oid car2 = store_.InternSymbol("car2");
  store_.AddSetMember(vehicles, mary_, {}, car2);
  ASSERT_TRUE(store_.SetScalar(color, car2, {}, red_).ok());

  Result<RefPtr> r = ParseRef("mary..vehicles.color");
  ASSERT_TRUE(r.ok());
  SemanticStructure I(store_);
  RefEvaluator eval(I);
  Bindings b;
  std::multiset<std::string> emitted;
  Result<bool> res = eval.Enumerate(**r, &b, [&](Oid o) -> Result<bool> {
    emitted.insert(store_.DisplayName(o));
    return true;
  });
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_EQ(emitted, (std::multiset<std::string>{"blue", "red"}));
  EXPECT_EQ(eval.duplicates_suppressed(), 1u);
}

TEST_F(RefEvalTest, DuplicateSuppressionKeepsDistinctBindings) {
  // Same object, different bindings: both solutions must survive.
  Oid color = *store_.FindSymbol("color");
  Oid vehicles = *store_.FindSymbol("vehicles");
  Oid car2 = store_.InternSymbol("car2");
  store_.AddSetMember(vehicles, mary_, {}, car2);
  ASSERT_TRUE(store_.SetScalar(color, car2, {}, red_).ok());
  auto sols = Solutions("mary..vehicles[V].color");
  EXPECT_EQ(sols, (std::set<Row>{{{"_", "red"}, {"V", "car1"}},
                                 {{"_", "red"}, {"V", "car2"}},
                                 {{"_", "blue"}, {"V", "bike1"}}}));
}

TEST_F(RefEvalTest, GuardFilterDoesNotPretendToDrive) {
  // Regression: a molecule over an unbound variable whose only filter
  // is a comparison guard must fall back to scanning the universe —
  // guards have no stored extent, so "driving" from one wrongly
  // produced zero candidates.
  store_.InternSymbol("lt");
  store_.InternInt(35);
  auto sols = Solutions("X[lt@(35)->Y]");
  EXPECT_EQ(sols, (std::set<Row>{{{"_", "4"}, {"X", "4"}, {"Y", "4"}},
                                 {{"_", "30"}, {"X", "30"}, {"Y", "30"}}}));
}

TEST_F(RefEvalTest, MatchesScalarPathAgainstBoundTarget) {
  // The self filter pushes the bound object `red` into the path
  // pattern X.color: an inverted value→receiver probe.
  auto sols = Solutions("red[self->X.color]");
  EXPECT_EQ(sols, (std::set<Row>{{{"_", "red"}, {"X", "car1"}}}));
}

TEST_F(RefEvalTest, MatchesSetPathAgainstBoundTarget) {
  // member→receiver probe: whose vehicle set contains car1?
  auto sols = Solutions("car1[self->X..vehicles]");
  EXPECT_EQ(sols, (std::set<Row>{{{"_", "car1"}, {"X", "mary"}}}));
}

TEST_F(RefEvalTest, MoleculeDrivesFromInvertedValueIndex) {
  auto sols = Solutions("X[color->red]");
  EXPECT_EQ(sols, (std::set<Row>{{{"_", "car1"}, {"X", "car1"}}}));
  auto sols2 = Solutions("X[vehicles->>{car1}]");
  EXPECT_EQ(sols2, (std::set<Row>{{{"_", "mary"}, {"X", "mary"}}}));
}

TEST_F(RefEvalTest, IndexedAndUnindexedSolutionsAgree) {
  store_.InternSymbol("lt");
  store_.InternInt(35);
  const char* kRefs[] = {
      "mary..vehicles.color",
      "mary..vehicles[V].color",
      "red[self->X.color]",
      "car1[self->X..vehicles]",
      "X:employee[age->A]",
      "X[color->red]",
      "X[vehicles->>{car1}]",
      "X[vehicles->>{V:automobile}]",
      "X[lt@(35)->Y]",
      "X[color->C]",
  };
  for (const char* s : kRefs) {
    EXPECT_EQ(Solutions(s), Solutions(s, /*use_inverted_indexes=*/false))
        << s;
  }
}

}  // namespace
}  // namespace pathlog
