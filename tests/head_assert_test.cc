// Unit tests for head assertion: virtual-object creation, skolem
// determinism, transactional skip semantics, and rejection cases.

#include "eval/head_assert.h"

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "store/fact.h"

namespace pathlog {
namespace {

class HeadAssertTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_.InternSymbol(kSelfMethodName);
    p1_ = store_.InternSymbol("p1");
  }

  Status Assert(std::string_view head_text,
                HeadValueMode mode = HeadValueMode::kRequireDefined,
                std::map<std::string, Oid> bindings = {}) {
    Result<RefPtr> head = ParseRef(head_text);
    EXPECT_TRUE(head.ok()) << head.status();
    if (!head.ok()) return head.status();
    HeadAsserter asserter(&store_, mode);
    Bindings b;
    for (const auto& [var, oid] : bindings) b.Bind(var, oid);
    return asserter.Assert(**head, &b);
  }

  ObjectStore store_;
  Oid p1_;
};

TEST_F(HeadAssertTest, GroundMoleculeAssertsFacts) {
  ASSERT_TRUE(Assert("p1[age->30; city->ny]:employee").ok());
  Oid age = *store_.FindSymbol("age");
  Oid city = *store_.FindSymbol("city");
  EXPECT_EQ(store_.GetScalar(age, p1_, {}), store_.FindInt(30));
  EXPECT_EQ(store_.GetScalar(city, p1_, {}), store_.FindSymbol("ny"));
  EXPECT_TRUE(store_.IsA(p1_, *store_.FindSymbol("employee")));
}

TEST_F(HeadAssertTest, SpinePathCreatesVirtualObject) {
  ASSERT_TRUE(Assert("p1.boss[rank->1]").ok());
  Oid boss = *store_.FindSymbol("boss");
  std::optional<Oid> vb = store_.GetScalar(boss, p1_, {});
  ASSERT_TRUE(vb.has_value());
  EXPECT_EQ(store_.kind(*vb), ObjectKind::kAnonymous);
  EXPECT_EQ(store_.DisplayName(*vb), "_boss(p1)");
  Oid rank = *store_.FindSymbol("rank");
  EXPECT_EQ(store_.GetScalar(rank, *vb, {}), store_.FindInt(1));
}

TEST_F(HeadAssertTest, SkolemIsStableAcrossAssertions) {
  ASSERT_TRUE(Assert("p1.boss[rank->1]").ok());
  uint64_t gen = store_.generation();
  size_t objects = store_.UniverseSize();
  // Re-assertion is a no-op: same skolem, no new facts, no new objects.
  ASSERT_TRUE(Assert("p1.boss[rank->1]").ok());
  EXPECT_EQ(store_.generation(), gen);
  EXPECT_EQ(store_.UniverseSize(), objects);
}

TEST_F(HeadAssertTest, ArgumentsDistinguishSkolems) {
  ASSERT_TRUE(Assert("p1.review@(2024)[score->5]").ok());
  ASSERT_TRUE(Assert("p1.review@(2025)[score->3]").ok());
  Oid review = *store_.FindSymbol("review");
  Oid y24 = *store_.FindInt(2024);
  Oid y25 = *store_.FindInt(2025);
  std::optional<Oid> r24 = store_.GetScalar(review, p1_, {y24});
  std::optional<Oid> r25 = store_.GetScalar(review, p1_, {y25});
  ASSERT_TRUE(r24.has_value());
  ASSERT_TRUE(r25.has_value());
  EXPECT_NE(*r24, *r25);
  EXPECT_EQ(store_.DisplayName(*r24), "_review(p1,2024)");
}

TEST_F(HeadAssertTest, NestedSpineCreatesChains) {
  ASSERT_TRUE(Assert("p1.dept.head[name->alice]").ok());
  Oid dept = *store_.FindSymbol("dept");
  Oid head = *store_.FindSymbol("head");
  std::optional<Oid> d = store_.GetScalar(dept, p1_, {});
  ASSERT_TRUE(d.has_value());
  std::optional<Oid> h = store_.GetScalar(head, *d, {});
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(store_.DisplayName(*h), "_head(_dept(p1))");
}

TEST_F(HeadAssertTest, RequireDefinedSkipsAtomically) {
  // The first filter is assertable, the second needs the undefined
  // p1.street: with kRequireDefined the WHOLE instance must be skipped
  // — no partial city fact.
  store_.InternSymbol("street");
  uint64_t gen = store_.generation();
  ASSERT_TRUE(
      Assert("p1.addr[city->ny; street->p1.street]").ok());
  EXPECT_EQ(store_.generation(), gen);  // nothing asserted
  Oid addr = *store_.FindSymbol("addr");
  EXPECT_EQ(store_.GetScalar(addr, p1_, {}), std::nullopt);
}

TEST_F(HeadAssertTest, SkolemizeModeInventsValues) {
  store_.InternSymbol("street");
  ASSERT_TRUE(Assert("p1.addr[city->ny; street->p1.street]",
                     HeadValueMode::kSkolemize).ok());
  Oid street = *store_.FindSymbol("street");
  std::optional<Oid> s = store_.GetScalar(street, p1_, {});
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(store_.DisplayName(*s), "_street(p1)");
}

TEST_F(HeadAssertTest, UnboundHeadVariableRejected) {
  EXPECT_EQ(Assert("p1[age->X]").code(), StatusCode::kUnsafeRule);
}

TEST_F(HeadAssertTest, BoundVariablesResolve) {
  Oid ny = store_.InternSymbol("ny");
  ASSERT_TRUE(Assert("p1[city->X]", HeadValueMode::kRequireDefined,
                     {{"X", ny}}).ok());
  Oid city = *store_.FindSymbol("city");
  EXPECT_EQ(store_.GetScalar(city, p1_, {}), ny);
}

TEST_F(HeadAssertTest, SetValuedPathInSpineRejected) {
  Result<RefPtr> head = ParseRef("p1..friends[a->1]");
  ASSERT_TRUE(head.ok());
  HeadAsserter asserter(&store_, HeadValueMode::kRequireDefined);
  Bindings b;
  EXPECT_EQ(asserter.Assert(**head, &b).code(), StatusCode::kIllFormed);
}

TEST_F(HeadAssertTest, ScalarConflictSurfaces) {
  ASSERT_TRUE(Assert("p1[age->30]").ok());
  EXPECT_EQ(Assert("p1[age->31]").code(), StatusCode::kScalarConflict);
}

TEST_F(HeadAssertTest, SetEnumAndSetRefHeads) {
  ASSERT_TRUE(Assert("p1[kids->>{tim,mary}]").ok());
  ASSERT_TRUE(Assert("p2[copies->>p1..kids]").ok());
  Oid copies = *store_.FindSymbol("copies");
  Oid p2 = *store_.FindSymbol("p2");
  const SetGroup* g = store_.GetSetGroup(copies, p2, {});
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->members.size(), 2u);
}

TEST_F(HeadAssertTest, ClassPositionInternsAndAsserts) {
  ASSERT_TRUE(Assert("p1:manager:employee").ok());
  EXPECT_TRUE(store_.IsA(p1_, *store_.FindSymbol("manager")));
  EXPECT_TRUE(store_.IsA(p1_, *store_.FindSymbol("employee")));
}

TEST_F(HeadAssertTest, SkolemCountsReported) {
  Result<RefPtr> head = ParseRef("p1.a.b.c[x->1]");
  ASSERT_TRUE(head.ok());
  HeadAsserter asserter(&store_, HeadValueMode::kRequireDefined);
  Bindings b;
  ASSERT_TRUE(asserter.Assert(**head, &b).ok());
  EXPECT_EQ(asserter.skolems_created(), 3u);
}

}  // namespace
}  // namespace pathlog
