// The concurrency contract under fire (run under TSan by ci/check.sh).
//
// Exercises every guarantee docs/IMPLEMENTATION.md ("Concurrency
// contract") makes: concurrent read-only Query/Eval/Holds against a
// concurrent mutator answer exactly what some serial execution would
// (the differential invariant — answers match a prefix state and grow
// monotonically per reader); degraded()/Health() are readable from any
// thread while the writer enters and leaves degraded mode; the stats
// server's endpoints scrape live sinks during a degrade/heal cycle;
// the flight recorder survives span storms racing Snapshot/Reset; the
// query log rotates under concurrent appends without losing a record;
// Histogram's relaxed-atomic export is exact once writers quiesce; and
// StatsServer's Stop() joins the accept thread before borrowed sinks
// can be destroyed.
//
// No test here attaches a ResourceBudget: budgets are per-operation
// state and explicitly outside the concurrent-reader guarantee.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/stats_server.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "query/database.h"
#include "store/file_ops.h"

namespace pathlog {
namespace {

// ---------------------------------------------------------------------------
// Readers vs writer: the differential invariant.

/// The program applied before any concurrency starts: interns every
/// name the readers' queries mention, so their fast path stays pure.
constexpr char kBaseProgram[] =
    "e0 : employee. e0[salary->100].\n"
    "X[paid->1] <- X:employee[salary->S].\n";

/// Batch k asserts one more employee; the reader query's answer count
/// after batch k is exactly k+1.
std::string Batch(int k) {
  const std::string name = "e" + std::to_string(k);
  return name + " : employee. " + name + "[salary->" +
         std::to_string(100 + k) + "].";
}

TEST(ConcurrencyTest, ReadersMatchSomeSerialPrefixState) {
  constexpr int kBatches = 12;
  constexpr int kReaders = 4;

  // Serial oracle: the exact answer counts after each batch.
  std::set<uint64_t> serial_counts;
  {
    Database oracle;
    ASSERT_TRUE(oracle.Load(kBaseProgram).ok());
    Result<ResultSet> rs = oracle.Query("?- X:employee[salary->S].");
    ASSERT_TRUE(rs.ok()) << rs.status();
    serial_counts.insert(rs->size());
    for (int k = 1; k <= kBatches; ++k) {
      ASSERT_TRUE(oracle.Load(Batch(k)).ok());
      rs = oracle.Query("?- X:employee[salary->S].");
      ASSERT_TRUE(rs.ok()) << rs.status();
      serial_counts.insert(rs->size());
    }
  }

  Database db;
  ASSERT_TRUE(db.Load(kBaseProgram).ok());
  ASSERT_TRUE(db.Materialize().ok());

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&db, &done, &failures, &serial_counts] {
      uint64_t last = 0;
      while (!done.load(std::memory_order_acquire)) {
        Result<ResultSet> rs = db.Query("?- X:employee[salary->S].");
        if (!rs.ok()) {
          ++failures;
          return;
        }
        const uint64_t n = rs->size();
        // Differential invariant: every concurrent answer is the
        // answer of some serial prefix execution, and the store is
        // monotone, so each reader's view never shrinks.
        if (serial_counts.count(n) == 0 || n < last) {
          ++failures;
          return;
        }
        last = n;
      }
    });
  }

  for (int k = 1; k <= kBatches; ++k) {
    ASSERT_TRUE(db.Load(Batch(k)).ok());
    ASSERT_TRUE(db.Materialize().ok());
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Quiesced: concurrent execution converged on the serial answer.
  Result<ResultSet> final_rs = db.Query("?- X:employee[salary->S].");
  ASSERT_TRUE(final_rs.ok());
  EXPECT_EQ(final_rs->size(), static_cast<size_t>(kBatches) + 1);
}

TEST(ConcurrencyTest, ReadersVsDurableWriterWithCheckpoints) {
  constexpr int kBatches = 8;
  FaultInjectingFileOps fs;
  Result<Database> opened = Database::Open("/db", {}, &fs);
  ASSERT_TRUE(opened.ok()) << opened.status();
  Database db = std::move(*opened);
  ASSERT_TRUE(db.Load(kBaseProgram).ok());
  ASSERT_TRUE(db.Materialize().ok());
  // Prime the readers' references once so their names are interned and
  // committed; afterwards the readers are provably read-only.
  ASSERT_TRUE(db.Holds("e0[salary->100]").ok());

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&db, &done, &failures] {
      while (!done.load(std::memory_order_acquire)) {
        Result<bool> h = db.Holds("e0[salary->100]");
        Result<std::vector<Oid>> e = db.Eval("e0.salary");
        if (!h.ok() || !*h || !e.ok() || e->size() != 1) {
          ++failures;
          return;
        }
        DatabaseHealth health = db.Health();
        if (health.degraded) {
          ++failures;
          return;
        }
      }
    });
  }

  for (int k = 1; k <= kBatches; ++k) {
    ASSERT_TRUE(db.Load(Batch(k)).ok());
    ASSERT_TRUE(db.Materialize().ok());
    if (k % 2 == 0) {
      ASSERT_TRUE(db.Checkpoint().ok());
    }
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Recovery sees everything the concurrent run committed.
  Result<Database> reopened = Database::Open("/db", {}, &fs);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  Result<ResultSet> rs = reopened->Query("?- X:employee[salary->S].");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->size(), static_cast<size_t>(kBatches) + 1);
}

// ---------------------------------------------------------------------------
// Degrade/heal while other threads read health and scrape endpoints.

using FaultKind = FaultInjectingFileOps::FaultKind;
using FaultOp = FaultInjectingFileOps::FaultOp;
using FaultEvent = FaultInjectingFileOps::FaultEvent;
using FaultSchedule = FaultInjectingFileOps::FaultSchedule;

TEST(ConcurrencyTest, DegradeHealCycleUnderConcurrentScrapes) {
  FaultInjectingFileOps fs;
  MetricsRegistry metrics;
  FlightRecorder flight(64);
  QueryLog query_log{QueryLogOptions{}};  // in-memory: no fs contention

  DatabaseOptions opts;
  opts.engine.obs.metrics = &metrics;
  opts.engine.obs.flight = &flight;
  opts.engine.obs.query_log = &query_log;
  opts.durability.max_transient_retries = 0;  // degrade immediately
  Result<Database> opened = Database::Open("/db", opts, &fs);
  ASSERT_TRUE(opened.ok()) << opened.status();
  Database db = std::move(*opened);
  ASSERT_TRUE(db.Load(kBaseProgram).ok());
  ASSERT_TRUE(db.Materialize().ok());
  ASSERT_TRUE(db.Holds("e0[salary->100]").ok());

  StatsServerOptions server_opts;
  server_opts.metrics = &metrics;
  server_opts.flight = &flight;
  server_opts.query_log = &query_log;
  server_opts.health = [&db]() {
    // The satellite regression: Health()/degraded() from a non-writer
    // thread while the writer enters/leaves degraded mode.
    DatabaseHealth h = db.Health();
    ServingHealth s;
    s.ok = !h.degraded;
    s.detail = h.degraded_cause;
    return s;
  };
  StatsServer server(server_opts);  // HandleRequest needs no socket

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  // Readers: answers survive every degrade/heal transition.
  for (int r = 0; r < 2; ++r) {
    workers.emplace_back([&db, &done, &failures] {
      while (!done.load(std::memory_order_acquire)) {
        Result<bool> h = db.Holds("e0[salary->100]");
        if (!h.ok() || !*h) {
          ++failures;
          return;
        }
        (void)db.degraded();
        (void)db.Health();
      }
    });
  }
  // Scrapers: every endpoint, continuously.
  workers.emplace_back([&server, &done, &failures] {
    const std::string paths[] = {"/metrics", "/healthz", "/statusz",
                                 "/tracez", "/querylogz", "/varz"};
    while (!done.load(std::memory_order_acquire)) {
      for (const std::string& p : paths) {
        HttpResponse rsp = server.HandleRequest(p);
        if (rsp.status != 200 && rsp.status != 503) {
          ++failures;
          return;
        }
      }
    }
  });

  // Writer (this thread): three degrade/heal cycles.
  for (int cycle = 0; cycle < 3; ++cycle) {
    FaultSchedule s;
    s.events.push_back(FaultEvent{FaultOp::kAppend, 1, 1u << 20,
                                  FaultKind::kFail, StatusCode::kInternal});
    fs.SetSchedule(s);
    Status st = db.Load("probe" + std::to_string(cycle) + " : employee.");
    EXPECT_FALSE(st.ok());
    EXPECT_TRUE(db.degraded());
    EXPECT_FALSE(db.Load("x : employee.").ok());  // fail-fast while down

    fs.SetSchedule(FaultSchedule{});
    ASSERT_TRUE(db.Checkpoint().ok());  // the recovery probe
    EXPECT_FALSE(db.degraded());
    ASSERT_TRUE(db.Load("heal" + std::to_string(cycle) +
                        " : employee. heal" + std::to_string(cycle) +
                        "[salary->7].")
                    .ok());
    // Drain the dirty window before the next SetSchedule: once this
    // Materialize returns, readers are back on the shared-lock fast
    // path and this thread is the only one touching the fake fs.
    ASSERT_TRUE(db.Materialize().ok());
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_FALSE(db.Health().degraded);
  EXPECT_GE(db.Health().degraded_entries, 3u);
}

// ---------------------------------------------------------------------------
// Flight recorder: span storms racing Snapshot/ToTraceJson/Reset.

TEST(ConcurrencyTest, FlightRecorderSpanStorm) {
  FlightRecorder flight(32);
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&flight, &done, w] {
      int i = 0;
      while (!done.load(std::memory_order_acquire)) {
        {
          FlightSpan span(&flight, "storm.span", "test");
          flight.Record("storm.instant", "test", 0,
                        "{\"writer\":" + std::to_string(w) + "}");
        }
        if (++i % 64 == 0) std::this_thread::yield();
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    std::vector<FlightEvent> events = flight.Snapshot();
    if (events.size() > 32) ++failures;
    for (size_t j = 1; j < events.size(); ++j) {
      if (events[j].seq <= events[j - 1].seq) ++failures;
    }
    Result<JsonValue> parsed = ParseJson(flight.ToTraceJson());
    if (!parsed.ok()) ++failures;
    if (i % 50 == 0) flight.Reset();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---------------------------------------------------------------------------
// Query log: concurrent appends across rotation lose nothing.

TEST(ConcurrencyTest, QueryLogConcurrentAppendsAcrossRotation) {
  FaultInjectingFileOps fs;
  QueryLogOptions opts;
  opts.path = "/log/q.jsonl";
  opts.rotate_bytes = 4096;  // many rotations in a short run
  opts.recent_capacity = 16;
  opts.fops = &fs;
  QueryLog log(opts);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> appenders;
  for (int t = 0; t < kThreads; ++t) {
    appenders.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        QueryLogRecord rec;
        rec.kind = "query";
        rec.query = "?- thread" + std::to_string(t) + "_" +
                    std::to_string(i) + ".";
        rec.latency_ms = 1.0;
        (void)log.Append(std::move(rec));
        if (i % 32 == 0) (void)log.Recent(8);  // concurrent ring reads
      }
    });
  }
  for (std::thread& t : appenders) t.join();

  EXPECT_TRUE(log.file_error().ok()) << log.file_error();
  EXPECT_EQ(log.records_written(), uint64_t{kThreads} * kPerThread);
  EXPECT_GT(log.rotations(), 0u);
  EXPECT_EQ(log.Recent(16).size(), 16u);
}

// ---------------------------------------------------------------------------
// Histogram: relaxed atomics, exact once writers quiesce.

TEST(ConcurrencyTest, HistogramConcurrentObserveExactAfterQuiesce) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("pathlog_test_ms",
                                       DefaultLatencyBoundsMs());
  ASSERT_NE(h, nullptr);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::atomic<bool> done{false};
  // A concurrent exporter: estimates may tear between series, but must
  // never crash or race (the TSan assertion).
  std::thread exporter([&] {
    while (!done.load(std::memory_order_acquire)) {
      (void)h->Quantile(0.99);
      (void)registry.ToPrometheusText();
    }
  });
  std::vector<std::thread> observers;
  for (int t = 0; t < kThreads; ++t) {
    observers.emplace_back([h] {
      for (int i = 0; i < kPerThread; ++i) h->Observe(1.0);
    });
  }
  for (std::thread& t : observers) t.join();
  done.store(true, std::memory_order_release);
  exporter.join();

  // Quiesced: exported count equals the sum of per-thread observations.
  EXPECT_EQ(h->total_count(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(h->sum(), static_cast<double>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i <= h->bounds().size(); ++i) {
    bucket_total += h->bucket_count(i);
  }
  EXPECT_EQ(bucket_total, uint64_t{kThreads} * kPerThread);
}

// ---------------------------------------------------------------------------
// StatsServer lifecycle: Stop() joins before borrowed sinks die.

TEST(ConcurrencyTest, StatsServerStopsBeforeSinksAreDestroyed) {
  // Destruction order is the contract: members declared after the
  // sinks are destroyed first, so the server (and its accept thread)
  // is gone before the sinks it borrows.
  MetricsRegistry metrics;
  metrics.GetCounter("pathlog_test_total")->Inc();
  FlightRecorder flight(8);
  StatsServerOptions opts;
  opts.metrics = &metrics;
  opts.flight = &flight;
  StatsServer server(opts);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);
  Result<HttpResponse> rsp = HttpGet(server.port(), "/metrics");
  ASSERT_TRUE(rsp.ok()) << rsp.status();
  EXPECT_EQ(rsp->status, 200);
  // Scope exit: ~StatsServer → Stop() → join, then the sinks.
}

TEST(ConcurrencyTest, StatsServerConcurrentStopIsIdempotent) {
  MetricsRegistry metrics;
  StatsServerOptions opts;
  opts.metrics = &metrics;
  StatsServer server(opts);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.running());

  std::vector<std::thread> stoppers;
  for (int i = 0; i < 3; ++i) {
    stoppers.emplace_back([&server] { server.Stop(); });
  }
  for (std::thread& t : stoppers) t.join();
  EXPECT_FALSE(server.running());

  // Restart after a concurrent shutdown storm still works.
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.running());
  HttpResponse healthz = server.HandleRequest("/healthz");
  EXPECT_EQ(healthz.status, 200);
  server.Stop();
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace pathlog
