// Derivation provenance: ExplainFact and the DerivationRecord stream.

#include <gtest/gtest.h>

#include "obs/json.h"
#include "query/database.h"

namespace pathlog {
namespace {

DatabaseOptions Traced() {
  DatabaseOptions opts;
  opts.engine.trace_provenance = true;
  return opts;
}

TEST(ProvenanceTest, ExtensionalFactsExplainedAsSuch) {
  Database db(Traced());
  ASSERT_TRUE(db.Load("mary[age->30].").ok());
  ASSERT_TRUE(db.Materialize().ok());
  std::string expl = db.ExplainFact(0);
  EXPECT_NE(expl.find("mary[age->30]"), std::string::npos);
  EXPECT_NE(expl.find("extensional"), std::string::npos);
}

TEST(ProvenanceTest, DerivedFactNamesRuleAndBindings) {
  Database db(Traced());
  ASSERT_TRUE(db.Load(R"(
    a1 : automobile[engine->e1].
    e1[power->150].
    X[power->Y] <- X:automobile.engine[power->Y].
  )").ok());
  ASSERT_TRUE(db.Materialize().ok());
  // Find the derived power fact.
  std::optional<uint64_t> gen;
  for (uint64_t g = 0; g < db.store().generation(); ++g) {
    const Fact& f = db.store().FactAt(g);
    if (f.kind == FactKind::kScalar &&
        db.DisplayName(f.method) == "power" &&
        db.DisplayName(f.recv) == "a1") {
      gen = g;
    }
  }
  ASSERT_TRUE(gen.has_value());
  std::string expl = db.ExplainFact(*gen);
  EXPECT_NE(expl.find("derived by rule"), std::string::npos);
  EXPECT_NE(expl.find("X[power->Y]"), std::string::npos);
  EXPECT_NE(expl.find("X=a1"), std::string::npos);
  EXPECT_NE(expl.find("Y=150"), std::string::npos);
}

TEST(ProvenanceTest, VirtualObjectCreationIsAttributed) {
  Database db(Traced());
  ASSERT_TRUE(db.Load(R"(
    p1 : employee[worksFor->cs1].
    X.boss[worksFor->D] <- X:employee[worksFor->D].
  )").ok());
  ASSERT_TRUE(db.Materialize().ok());
  // The boss(p1) = _boss(p1) fact is derived.
  std::optional<uint64_t> gen;
  for (uint64_t g = 0; g < db.store().generation(); ++g) {
    const Fact& f = db.store().FactAt(g);
    if (f.kind == FactKind::kScalar && db.DisplayName(f.method) == "boss") {
      gen = g;
    }
  }
  ASSERT_TRUE(gen.has_value());
  std::string expl = db.ExplainFact(*gen);
  EXPECT_NE(expl.find("derived by rule"), std::string::npos);
  EXPECT_NE(expl.find("X=p1"), std::string::npos);
}

TEST(ProvenanceTest, RecordsSpanMultipleMaterializations) {
  Database db(Traced());
  ASSERT_TRUE(db.Load(R"(
    p0[kids->>{p1}].
    X[desc->>{Y}] <- X[kids->>{Y}].
  )").ok());
  ASSERT_TRUE(db.Materialize().ok());
  size_t first = db.provenance().size();
  EXPECT_GE(first, 1u);
  ASSERT_TRUE(db.Load("p1[kids->>{p2}].").ok());
  ASSERT_TRUE(db.Materialize().ok());
  EXPECT_GT(db.provenance().size(), first);
  // Every record covers a valid, derived fact range.
  for (const DerivationRecord& r : db.provenance()) {
    EXPECT_LT(r.first_gen, r.end_gen);
    EXPECT_LE(r.end_gen, db.store().generation());
    EXPECT_LT(r.rule_index, db.rules().size());
  }
}

TEST(ProvenanceTest, OffByDefault) {
  Database db;
  ASSERT_TRUE(db.Load(R"(
    p0[kids->>{p1}].
    X[desc->>{Y}] <- X[kids->>{Y}].
  )").ok());
  ASSERT_TRUE(db.Materialize().ok());
  EXPECT_TRUE(db.provenance().empty());
}

TEST(ProvenanceTest, OutOfRangeGen) {
  Database db(Traced());
  EXPECT_EQ(db.ExplainFact(99), "no such fact.");
}

// ---------------------------------------------------------------------------
// ExplainFactJson: the machine-readable twin.

TEST(ProvenanceTest, JsonExplainsExtensionalFacts) {
  Database db(Traced());
  ASSERT_TRUE(db.Load("mary[age->30].").ok());
  ASSERT_TRUE(db.Materialize().ok());
  Result<std::string> json = db.ExplainFactJson(0);
  ASSERT_TRUE(json.ok()) << json.status();
  Result<JsonValue> v = ParseJson(*json);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_DOUBLE_EQ(v->Find("gen")->as_number(), 0.0);
  EXPECT_EQ(v->Find("fact")->as_string(), "mary[age->30]");
  EXPECT_EQ(v->Find("kind")->as_string(), "extensional");
  EXPECT_EQ(v->Find("rule"), nullptr);
}

TEST(ProvenanceTest, JsonExplainsDerivedFactsWithRuleAndBindings) {
  Database db(Traced());
  ASSERT_TRUE(db.Load(R"(
    a1 : automobile[engine->e1].
    e1[power->150].
    X[power->Y] <- X:automobile.engine[power->Y].
  )").ok());
  ASSERT_TRUE(db.Materialize().ok());
  std::optional<uint64_t> gen;
  for (uint64_t g = 0; g < db.store().generation(); ++g) {
    const Fact& f = db.store().FactAt(g);
    if (f.kind == FactKind::kScalar &&
        db.DisplayName(f.method) == "power" &&
        db.DisplayName(f.recv) == "a1") {
      gen = g;
    }
  }
  ASSERT_TRUE(gen.has_value());
  Result<std::string> json = db.ExplainFactJson(*gen);
  ASSERT_TRUE(json.ok()) << json.status();
  Result<JsonValue> v = ParseJson(*json);
  ASSERT_TRUE(v.ok()) << v.status() << "\njson: " << *json;
  EXPECT_EQ(v->Find("kind")->as_string(), "derived");
  EXPECT_NE(v->Find("rule")->as_string().find("X[power->Y]"),
            std::string::npos);
  EXPECT_TRUE(v->Find("rule_index")->is_number());
  const JsonValue* bindings = v->Find("bindings");
  ASSERT_NE(bindings, nullptr);
  ASSERT_NE(bindings->Find("X"), nullptr);
  EXPECT_EQ(bindings->Find("X")->as_string(), "a1");
  EXPECT_EQ(bindings->Find("Y")->as_string(), "150");

  // The text and JSON explanations agree on the derivation.
  std::string text = db.ExplainFact(*gen);
  EXPECT_NE(text.find("derived by rule"), std::string::npos);
  EXPECT_NE(text.find("X=a1"), std::string::npos);
}

TEST(ProvenanceTest, JsonOutOfRangeGenIsNotFound) {
  Database db(Traced());
  Result<std::string> json = db.ExplainFactJson(99);
  EXPECT_EQ(json.status().code(), StatusCode::kNotFound);
}

TEST(ProvenanceTest, JsonWithoutTracingFallsBackToExtensional) {
  // trace_provenance off: derived facts exist but no records, so the
  // JSON twin reports them as extensional — same as ExplainFact.
  Database db;
  ASSERT_TRUE(db.Load("p0[kids->>{p1}]. X[desc->>{Y}] <- X[kids->>{Y}].")
                  .ok());
  ASSERT_TRUE(db.Materialize().ok());
  const uint64_t last = db.store().generation() - 1;
  Result<std::string> json = db.ExplainFactJson(last);
  ASSERT_TRUE(json.ok()) << json.status();
  Result<JsonValue> v = ParseJson(*json);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->Find("kind")->as_string(), "extensional");
}

}  // namespace
}  // namespace pathlog
