// ResultSet behaviours not covered by the end-to-end suites.

#include "query/result_set.h"

#include <gtest/gtest.h>

namespace pathlog {
namespace {

class ResultSetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = store_.InternSymbol("a");
    b_ = store_.InternSymbol("b");
    c_ = store_.InternSymbol("c");
  }
  ObjectStore store_;
  Oid a_, b_, c_;
};

TEST_F(ResultSetTest, DedupSortsAndRemovesDuplicates) {
  ResultSet rs({"X", "Y"});
  rs.AddRow({b_, a_});
  rs.AddRow({a_, c_});
  rs.AddRow({b_, a_});
  rs.Dedup();
  EXPECT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs.rows()[0], (std::vector<Oid>{a_, c_}));
  EXPECT_EQ(rs.rows()[1], (std::vector<Oid>{b_, a_}));
}

TEST_F(ResultSetTest, ColumnCollectsDistinctSortedNames) {
  ResultSet rs({"X", "Y"});
  rs.AddRow({b_, a_});
  rs.AddRow({a_, a_});
  rs.AddRow({b_, c_});
  EXPECT_EQ(rs.Column("X", store_), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rs.Column("Y", store_), (std::vector<std::string>{"a", "c"}));
  EXPECT_TRUE(rs.Column("Z", store_).empty());
}

TEST_F(ResultSetTest, ContainsRowMatchesSubsets) {
  ResultSet rs({"X", "Y"});
  rs.AddRow({a_, b_});
  EXPECT_TRUE(rs.ContainsRow({{"X", "a"}, {"Y", "b"}}, store_));
  EXPECT_TRUE(rs.ContainsRow({{"X", "a"}}, store_));
  EXPECT_FALSE(rs.ContainsRow({{"X", "b"}}, store_));
  EXPECT_FALSE(rs.ContainsRow({{"Z", "a"}}, store_));
}

TEST_F(ResultSetTest, ToStringBoundsRows) {
  ResultSet rs({"X"});
  for (int i = 0; i < 10; ++i) rs.AddRow({a_});
  std::string text = rs.ToString(store_, 3);
  EXPECT_NE(text.find("(7 more rows)"), std::string::npos);
  EXPECT_EQ(ResultSet({"X"}).ToString(store_), "no answers.\n");
}

}  // namespace
}  // namespace pathlog
