// Resource governance: the ResourceBudget unit contract (dimension
// ordering, cancellation, injectable clock, once-per-window rejection
// accounting) and its end-to-end behaviour through Database — a
// memory-budgeted runaway recursion must come back as
// kResourceExhausted naming the byte dimension with stratum/rule
// context, never as a bare deadline.

#include "base/budget.h"

#include <gtest/gtest.h>

#include <string>

#include "eval/engine.h"
#include "query/database.h"

namespace pathlog {
namespace {

// The never-terminating program from engine_test: every object gets a
// fresh virtual successor carrying the same property.
constexpr std::string_view kRunaway = R"(
  z[count->1].
  X.succ[count->1] <- X[count->1].
)";

TEST(BudgetTest, DefaultBudgetIsUnlimited) {
  ResourceBudget b;
  b.Arm();
  b.ChargeDerivations(1'000'000);
  EXPECT_TRUE(b.Check(1ull << 40).ok());
  EXPECT_TRUE(b.CheckControl().ok());
  EXPECT_EQ(b.rejections(), 0u);
}

TEST(BudgetTest, CancelTokenCopiesShareState) {
  CancelToken a;
  CancelToken b = a;  // copy, not a fresh flag
  EXPECT_FALSE(b.cancelled());
  a.Cancel();
  EXPECT_TRUE(b.cancelled());
  b.Reset();
  EXPECT_FALSE(a.cancelled());
}

TEST(BudgetTest, CancellationOutranksEveryDimension) {
  ResourceBudget b({1, 1, 1});
  b.Arm();
  b.token().Cancel();
  EXPECT_EQ(b.Check(1000).code(), StatusCode::kCancelled);
  EXPECT_EQ(b.CheckControl().code(), StatusCode::kCancelled);
}

TEST(BudgetTest, BytesDimensionTripsAsResourceExhausted) {
  ResourceBudget b({100, 0, 0});
  b.Arm();
  Status st = b.Check(101);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("bytes dimension"), std::string::npos) << st;
  EXPECT_TRUE(b.Check(100).ok());  // at the limit is within budget
}

TEST(BudgetTest, DerivationsDimensionTripsAsResourceExhausted) {
  ResourceBudget b({0, 4, 0});
  b.Arm();
  b.ChargeDerivations(4);
  EXPECT_TRUE(b.Check(0).ok());
  b.ChargeDerivations();
  Status st = b.Check(0);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("derivations dimension"), std::string::npos)
      << st;
}

TEST(BudgetTest, WallDimensionUsesInjectedClockAndTripsAsDeadline) {
  ResourceBudget b({0, 0, 50});
  uint64_t now = 1000;
  b.set_clock([&now] { return now; });
  b.Arm();
  now += 50;
  EXPECT_TRUE(b.CheckControl().ok());
  now += 1;
  Status st = b.CheckControl();
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(st.message().find("wall-ms dimension"), std::string::npos) << st;
}

TEST(BudgetTest, WallClockOnlyCountsWhileArmed) {
  ResourceBudget b({0, 0, 1});
  uint64_t now = 0;
  b.set_clock([&now] { return now; });
  now = 1'000'000;  // eons pass before the operation starts
  EXPECT_TRUE(b.CheckControl().ok()) << "unarmed budget has no deadline";
  b.Arm();  // the window starts here, not at construction
  EXPECT_TRUE(b.CheckControl().ok());
  now += 2;
  EXPECT_EQ(b.CheckControl().code(), StatusCode::kDeadlineExceeded);
}

TEST(BudgetTest, BytesOutrankTheLapsedDeadline) {
  // Both dimensions are blown; Check must report the bytes dimension so
  // a memory-budgeted runaway is never misdiagnosed as slow.
  ResourceBudget b({100, 0, 1});
  uint64_t now = 0;
  b.set_clock([&now] { return now; });
  b.Arm();
  now += 10'000;
  EXPECT_EQ(b.Check(1000).code(), StatusCode::kResourceExhausted);
  // The control-only probe sees just the deadline.
  EXPECT_EQ(b.CheckControl().code(), StatusCode::kDeadlineExceeded);
}

TEST(BudgetTest, RejectionsCountOncePerArmedWindow) {
  ResourceBudget b({100, 0, 0});
  b.Arm();
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(b.Check(1000).ok());  // polled repeatedly after the trip
  }
  EXPECT_EQ(b.rejections(), 1u) << "one rejected operation, not five polls";
  b.Arm();
  EXPECT_TRUE(b.Check(50).ok());
  EXPECT_EQ(b.rejections(), 1u) << "a clean window adds nothing";
  b.Arm();
  EXPECT_FALSE(b.Check(1000).ok());
  EXPECT_EQ(b.rejections(), 2u);
}

TEST(BudgetTest, ArmResetsTheDerivationCount) {
  ResourceBudget b({0, 10, 0});
  b.Arm();
  b.ChargeDerivations(10);
  EXPECT_EQ(b.derivations(), 10u);
  b.Arm();
  EXPECT_EQ(b.derivations(), 0u);
  EXPECT_TRUE(b.Check(0).ok());
}

// ---------------------------------------------------------------------------
// End-to-end through Database.
// ---------------------------------------------------------------------------

TEST(BudgetTest, MemoryBudgetedRunawayNamesTheByteDimension) {
  // The acceptance case: a runaway recursion under a byte budget (with
  // a generous wall budget also set) must return kResourceExhausted
  // naming bytes and the offending stratum/rule — not
  // kDeadlineExceeded, and not an unexplained guard trip.
  ResourceBudget budget({/*max_store_bytes=*/1ull << 20,
                         /*max_derivations=*/0,
                         /*max_wall_ms=*/600'000});
  DatabaseOptions opts;
  opts.engine.budget = &budget;
  Database db(opts);
  ASSERT_TRUE(db.Load(std::string(kRunaway)).ok());
  Status st = db.Materialize();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st;
  EXPECT_NE(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(st.message().find("bytes dimension"), std::string::npos) << st;
  EXPECT_NE(st.message().find("in stratum"), std::string::npos) << st;
  EXPECT_NE(st.message().find("X.succ[count->1]"), std::string::npos) << st;
  EXPECT_EQ(budget.rejections(), 1u);
}

TEST(BudgetTest, DerivationBudgetedRunawayStopsAtTheCount) {
  ResourceBudget budget({0, /*max_derivations=*/500, 0});
  DatabaseOptions opts;
  opts.engine.budget = &budget;
  Database db(opts);
  ASSERT_TRUE(db.Load(std::string(kRunaway)).ok());
  Status st = db.Materialize();
  ASSERT_EQ(st.code(), StatusCode::kResourceExhausted) << st;
  EXPECT_NE(st.message().find("derivations dimension"), std::string::npos)
      << st;
}

TEST(BudgetTest, WallBudgetedRunawayIsDeterministicWithAFakeClock) {
  ResourceBudget budget({0, 0, /*max_wall_ms=*/50});
  uint64_t now = 0;
  budget.set_clock([&now] {
    now += 10;  // every poll costs 10 fake milliseconds
    return now;
  });
  DatabaseOptions opts;
  opts.engine.budget = &budget;
  Database db(opts);
  ASSERT_TRUE(db.Load(std::string(kRunaway)).ok());
  Status st = db.Materialize();
  ASSERT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st;
  EXPECT_NE(st.message().find("wall-ms dimension"), std::string::npos) << st;
}

TEST(BudgetTest, CancelTokenAbortsQueriesUntilReset) {
  ResourceBudget budget;  // no limits: only the token can stop anything
  DatabaseOptions opts;
  opts.engine.budget = &budget;
  Database db(opts);
  ASSERT_TRUE(db.Load("p1 : employee. p1[salary->1000].").ok());
  Result<ResultSet> ok = db.Query("?- X:employee[salary->S].");
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->rows().size(), 1u);

  budget.token().Cancel();
  Result<ResultSet> r = db.Query("?- X:employee[salary->S].");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled) << r.status();
  Result<std::vector<Oid>> e = db.Eval("p1.salary");
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kCancelled);
  Result<bool> h = db.Holds("p1[salary->1000]");
  ASSERT_FALSE(h.ok());
  EXPECT_EQ(h.status().code(), StatusCode::kCancelled);
  EXPECT_GE(budget.rejections(), 3u);

  budget.token().Reset();
  Result<ResultSet> again = db.Query("?- X:employee[salary->S].");
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->rows().size(), 1u);
}

TEST(BudgetTest, ReadOnlyQueriesRespectTheWallBudget) {
  // A query over an already-materialised store goes through the
  // reference evaluator's control probe, not the engine loop.
  ResourceBudget budget({0, 0, 50});
  uint64_t now = 0;
  budget.set_clock([&now] { return now; });
  DatabaseOptions opts;
  opts.engine.budget = &budget;
  Database db(opts);
  ASSERT_TRUE(db.Load("p1 : employee. p1[salary->1000].").ok());
  ASSERT_TRUE(db.Materialize().ok());
  now += 1000;  // the next query's window starts here; clock then stalls
  Result<ResultSet> ok = db.Query("?- X:employee[salary->S].");
  EXPECT_TRUE(ok.ok()) << ok.status();

  // Now a clock that lapses mid-enumeration.
  budget.set_clock([&now] {
    now += 60;
    return now;
  });
  Result<ResultSet> r = db.Query("?- X:employee[salary->S].");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded) << r.status();
}

}  // namespace
}  // namespace pathlog
