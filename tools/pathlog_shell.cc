// pathlog: an interactive PathLog shell.
//
//   $ ./pathlog [--durable <dir>] [--trace-out=F] [--metrics-out=F]
//               [file.plg ...]
//
// Loads the given program files, then reads clauses and queries from
// stdin. Input is buffered until a clause-terminating '.' (so clauses
// may span lines). Lines starting with '\' are shell commands — see
// \help.
//
// With --durable, the session is crash-safe: state recovers from
// <dir> on startup and every accepted clause is written ahead to
// <dir>/wal.plgwal before "ok." is printed.
//
// Observability: every session records metrics and a structured trace
// (chrome://tracing format). \metrics and \trace expose them
// interactively; --metrics-out / --trace-out write them at exit.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "pathlog/pathlog.h"
#include "store/fact.h"
#include "store/file_ops.h"

namespace {

constexpr const char* kHelp = R"(PathLog shell commands:
  fact or rule clauses end with '.', e.g.   mary[age->30].
  queries start with '?-':                  ?- X:employee[age->A].
  \help             this message
  \stats            store and engine statistics
  \metrics [file]   session metrics (Prometheus text; with file: JSON)
  \profile on|off   toggle the query/rule profiler; \profile to report
  \trace <file>     write the session trace (chrome://tracing JSON)
  \facts [n]        show the first n facts (default 20)
  \rules            show the loaded rules
  \explain <gen>    provenance of the fact with generation <gen>
  \explain ?- ...   the query's plan: literal order + cardinality
                    estimates (skew-aware planner statistics)
  \lint [file]      lint the loaded program, or a .plg file, with the
                    semantic analyses (PL014-PL019) enabled (:lint works too)
  \dump <file>      write all facts as a loadable program
  \save <file>      save a binary snapshot (facts, rules, signatures)
  \restore <file>   replace the session with a saved snapshot
  \checkpoint       durable sessions: snapshot now and reset the WAL
  \health           durability/degraded-mode health: WAL retries,
                    rotations, degraded state and cause, store size
  \quit             exit
)";

/// Session-lifetime observability sinks. One bundle per process: the
/// Database only borrows these, and \restore / --durable replace the
/// Database mid-session.
struct SessionObs {
  pathlog::MetricsRegistry metrics;
  pathlog::Tracer tracer;
  pathlog::Profiler profiler;
};

SessionObs& Obs() {
  static SessionObs obs;
  return obs;
}

class Shell {
 public:
  Shell() : db_(MakeOptions()) { AttachObs(); }
  explicit Shell(pathlog::Database db) : db_(std::move(db)) { AttachObs(); }

  static pathlog::DatabaseOptions MakeOptions() {
    pathlog::DatabaseOptions opts;
    opts.engine.trace_provenance = true;
    return opts;
  }

  /// (Re)attaches the session sinks; called after every Database
  /// replacement (\restore, durable open) so metrics/traces span the
  /// whole session. The profiler participates only while \profile on.
  void AttachObs() {
    pathlog::ObsSinks sinks;
    sinks.metrics = &Obs().metrics;
    sinks.tracer = &Obs().tracer;
    sinks.profiler = profile_on_ ? &Obs().profiler : nullptr;
    db_.SetObsSinks(sinks);
  }

  bool LoadFile(const std::string& path) {
    std::ifstream in(path);
    if (!in) {
      fprintf(stderr, "cannot open %s\n", path.c_str());
      return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    pathlog::Status st = db_.Load(buffer.str());
    if (!st.ok()) {
      fprintf(stderr, "%s: %s\n", path.c_str(), st.ToString().c_str());
      return false;
    }
    printf("loaded %s (%zu facts, %zu rules so far)\n", path.c_str(),
           db_.store().FactCount(), db_.num_rules());
    return true;
  }

  void Handle(const std::string& input) {
    if (input.empty()) return;
    if (input[0] == '\\') {
      Command(input);
      return;
    }
    if (input.rfind(":lint", 0) == 0) {
      Command("\\lint" + input.substr(5));
      return;
    }
    if (input.rfind("?-", 0) == 0) {
      pathlog::Result<pathlog::ResultSet> rs = db_.Query(input);
      if (!rs.ok()) {
        printf("%s\n", rs.status().ToString().c_str());
        return;
      }
      printf("%s", rs->ToString(db_.store()).c_str());
      printf("(%zu answer%s)\n", rs->size(), rs->size() == 1 ? "" : "s");
      return;
    }
    pathlog::Status st = db_.Load(input);
    if (!st.ok()) {
      printf("%s\n", st.ToString().c_str());
      return;
    }
    printf("ok.\n");
  }

  void Command(const std::string& input) {
    std::istringstream iss(input);
    std::string cmd;
    iss >> cmd;
    if (cmd == "\\help") {
      printf("%s", kHelp);
    } else if (cmd == "\\stats") {
      if (db_.num_rules() > 0) {
        pathlog::Status st = db_.Materialize();
        if (!st.ok()) {
          printf("%s\n", st.ToString().c_str());
          return;
        }
      }
      pathlog::ObjectStore::Stats s = db_.store().ComputeStats();
      printf("objects: %zu\nisa facts: %zu\nscalar facts: %zu\n"
             "set facts: %zu\nrules: %zu\n",
             s.objects, s.isa_facts, s.scalar_facts, s.set_facts,
             db_.num_rules());
      const pathlog::EngineStats& es = db_.engine_stats();
      printf("last run: %llu iterations, %llu derivations, "
             "%llu virtual objects, %d strata, %.3f ms\n",
             static_cast<unsigned long long>(es.iterations),
             static_cast<unsigned long long>(es.derivations),
             static_cast<unsigned long long>(es.skolems_created),
             es.num_strata, es.elapsed_ms);
      printf("          %llu rule evaluations, %llu delta passes, "
             "%llu duplicates suppressed\n",
             static_cast<unsigned long long>(es.rule_evaluations),
             static_cast<unsigned long long>(es.delta_passes),
             static_cast<unsigned long long>(es.duplicates_suppressed));
      if (!es.stratum_iterations.empty()) {
        printf("iterations by stratum:");
        for (size_t si = 0; si < es.stratum_iterations.size(); ++si) {
          printf(" [%zu]=%llu", si,
                 static_cast<unsigned long long>(es.stratum_iterations[si]));
        }
        printf("\n");
      }
      if (es.limit_stratum >= 0) {
        printf("limit hit in stratum %d%s%s\n", es.limit_stratum,
               es.limit_rule.empty() ? "" : " while evaluating ",
               es.limit_rule.c_str());
      }
    } else if (cmd == "\\metrics") {
      std::string path;
      if (iss >> path) {
        pathlog::Status st = pathlog::WriteFileAtomic(
            pathlog::DefaultFileOps(), path, Obs().metrics.ToJson());
        if (st.ok()) {
          printf("wrote metrics JSON to %s\n", path.c_str());
        } else {
          printf("%s\n", st.ToString().c_str());
        }
      } else {
        printf("%s", Obs().metrics.ToPrometheusText().c_str());
      }
    } else if (cmd == "\\profile") {
      std::string arg;
      if (iss >> arg) {
        if (arg == "on") {
          profile_on_ = true;
          AttachObs();
          printf("profiling on.\n");
        } else if (arg == "off") {
          profile_on_ = false;
          AttachObs();
          printf("profiling off.\n");
        } else {
          printf("usage: \\profile [on|off]\n");
        }
      } else {
        printf("%s", db_.ProfileReport().c_str());
      }
    } else if (cmd == "\\trace") {
      std::string path;
      if (iss >> path) {
        pathlog::Status st = Obs().tracer.WriteTo(path);
        if (st.ok()) {
          printf("wrote trace (%zu events) to %s\n",
                 Obs().tracer.event_count(), path.c_str());
        } else {
          printf("%s\n", st.ToString().c_str());
        }
      } else {
        printf("usage: \\trace <file>\n");
      }
    } else if (cmd == "\\facts") {
      size_t n = 20;
      iss >> n;
      const uint64_t end = db_.store().generation();
      for (uint64_t g = 0; g < end && g < n; ++g) {
        printf("%4llu  %s.\n", static_cast<unsigned long long>(g),
               pathlog::FactToString(db_.store().FactAt(g),
                                     db_.store()).c_str());
      }
      if (end > n) {
        printf("... (%llu more)\n", static_cast<unsigned long long>(end - n));
      }
    } else if (cmd == "\\rules") {
      for (size_t i = 0; i < db_.rules().size(); ++i) {
        printf("  [%zu] %s\n", i, pathlog::ToString(db_.rules()[i]).c_str());
      }
      if (db_.rules().empty()) printf("  (no rules loaded)\n");
    } else if (cmd == "\\explain") {
      std::string rest;
      std::getline(iss, rest);
      const size_t start = rest.find_first_not_of(" \t");
      rest = start == std::string::npos ? "" : rest.substr(start);
      if (rest.rfind("?-", 0) == 0) {
        // A query: show the planner's chosen literal order with its
        // cardinality estimates (skew-aware statistics by default)
        // instead of running it.
        pathlog::Result<std::string> plan = db_.ExplainQuery(rest);
        if (plan.ok()) {
          printf("%s", plan->c_str());
        } else {
          printf("%s\n", plan.status().ToString().c_str());
        }
      } else if (!rest.empty() &&
                 rest.find_first_not_of("0123456789") == std::string::npos) {
        printf("%s\n", db_.ExplainFact(std::stoull(rest)).c_str());
      } else {
        printf("usage: \\explain <generation> | \\explain ?- <query>\n");
      }
    } else if (cmd == "\\dump") {
      std::string path;
      if (iss >> path) {
        std::ofstream out(path);
        out << pathlog::StoreToProgramText(db_.store());
        printf("wrote %zu facts to %s\n", db_.store().FactCount(),
               path.c_str());
      } else {
        printf("usage: \\dump <file>\n");
      }
    } else if (cmd == "\\save") {
      std::string path;
      if (iss >> path) {
        pathlog::Status st = db_.SaveSnapshotFile(path);
        printf("%s\n", st.ok() ? "saved." : st.ToString().c_str());
      } else {
        printf("usage: \\save <file>\n");
      }
    } else if (cmd == "\\restore") {
      std::string path;
      if (iss >> path) {
        pathlog::Result<pathlog::Database> restored =
            pathlog::Database::LoadSnapshotFile(path, MakeOptions());
        if (!restored.ok()) {
          printf("%s\n", restored.status().ToString().c_str());
        } else {
          db_ = std::move(*restored);
          AttachObs();
          printf("restored %zu facts, %zu rules.\n",
                 db_.store().FactCount(), db_.num_rules());
        }
      } else {
        printf("usage: \\restore <file>\n");
      }
    } else if (cmd == "\\lint") {
      std::string path;
      if (iss >> path) {
        std::ifstream in(path);
        if (!in) {
          printf("cannot open %s\n", path.c_str());
          return;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        // File lints get the semantic analyses too, matching
        // Database::Lint() for the session form.
        pathlog::LintOptions lint_options;
        lint_options.analyze = true;
        pathlog::LintReport report =
            pathlog::ProgramLinter(std::move(lint_options))
                .LintSource(buffer.str());
        printf("%s", report.ToString(path).c_str());
        if (report.empty()) {
          printf("%s: clean\n", path.c_str());
        } else {
          printf("%s: %zu error(s), %zu warning(s)\n", path.c_str(),
                 report.errors(), report.warnings());
        }
      } else {
        pathlog::LintReport report = db_.Lint();
        printf("%s", report.ToString("<session>").c_str());
        if (report.empty()) {
          printf("lint: clean (%zu rules, %zu triggers)\n",
                 db_.num_rules(), db_.num_triggers());
        } else {
          printf("lint: %zu error(s), %zu warning(s)\n", report.errors(),
                 report.warnings());
        }
      }
    } else if (cmd == "\\checkpoint") {
      pathlog::Status st = db_.Checkpoint();
      printf("%s\n", st.ok() ? "checkpointed." : st.ToString().c_str());
    } else if (cmd == "\\health") {
      pathlog::DatabaseHealth h = db_.Health();
      printf("durable:          %s\n", h.durable ? "yes" : "no");
      printf("mode:             %s\n",
             h.degraded ? "DEGRADED (read-only)" : "read-write");
      if (h.degraded) {
        printf("degraded cause:   %s\n", h.degraded_cause.c_str());
      }
      printf("degraded entries: %llu\n",
             static_cast<unsigned long long>(h.degraded_entries));
      printf("wal retries:      %llu\n",
             static_cast<unsigned long long>(h.wal_retries));
      printf("wal rotations:    %llu\n",
             static_cast<unsigned long long>(h.wal_rotations));
      printf("wal records:      %llu\n",
             static_cast<unsigned long long>(h.wal_records));
      printf("wal bytes:        %llu\n",
             static_cast<unsigned long long>(h.wal_bytes));
      printf("store bytes:      ~%llu\n",
             static_cast<unsigned long long>(h.store_bytes));
      printf("objects:          %llu\n",
             static_cast<unsigned long long>(h.objects));
      printf("facts:            %llu\n",
             static_cast<unsigned long long>(h.facts));
    } else if (cmd == "\\quit" || cmd == "\\q") {
      done_ = true;
    } else {
      printf("unknown command %s — try \\help\n", cmd.c_str());
    }
  }

  int Run() {
    std::string pending;
    std::string line;
    printf("PathLog shell — \\help for help, \\quit to exit.\n");
    while (!done_) {
      printf("%s", pending.empty() ? "pathlog> " : "     ...> ");
      fflush(stdout);
      if (!std::getline(std::cin, line)) break;
      // Trim trailing whitespace.
      while (!line.empty() && isspace(static_cast<unsigned char>(line.back()))) {
        line.pop_back();
      }
      if (pending.empty() && !line.empty() &&
          (line[0] == '\\' || line.rfind(":lint", 0) == 0)) {
        Handle(line);
        continue;
      }
      pending += line;
      pending += "\n";
      // A clause is complete when the buffer ends with a terminator dot.
      std::string trimmed = pending;
      while (!trimmed.empty() &&
             isspace(static_cast<unsigned char>(trimmed.back()))) {
        trimmed.pop_back();
      }
      if (!trimmed.empty() && trimmed.back() == '.') {
        Handle(trimmed);
        pending.clear();
      }
    }
    return 0;
  }

 private:
  pathlog::Database db_;
  bool done_ = false;
  bool profile_on_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  std::string durable_dir;
  std::string trace_out;
  std::string metrics_out;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--durable") {
      if (i + 1 >= argc) {
        fprintf(stderr, "--durable requires a directory argument\n");
        return 1;
      }
      durable_dir = argv[++i];
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(sizeof("--trace-out=") - 1);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(sizeof("--metrics-out=") - 1);
    } else {
      files.push_back(std::move(arg));
    }
  }

  Shell shell;
  if (!durable_dir.empty()) {
    pathlog::Result<pathlog::Database> db =
        pathlog::Database::Open(durable_dir, Shell::MakeOptions());
    if (!db.ok()) {
      fprintf(stderr, "%s: %s\n", durable_dir.c_str(),
              db.status().ToString().c_str());
      return 1;
    }
    printf("durable session at %s (%zu facts, %zu rules recovered)\n",
           durable_dir.c_str(), db->store().FactCount(), db->num_rules());
    shell = Shell(std::move(*db));
  }
  for (const std::string& path : files) {
    if (!shell.LoadFile(path)) return 1;
  }
  int rc = shell.Run();
  if (!trace_out.empty()) {
    pathlog::Status st = Obs().tracer.WriteTo(trace_out);
    if (!st.ok()) {
      fprintf(stderr, "--trace-out: %s\n", st.ToString().c_str());
      rc = rc == 0 ? 1 : rc;
    }
  }
  if (!metrics_out.empty()) {
    pathlog::Status st = pathlog::WriteFileAtomic(
        pathlog::DefaultFileOps(), metrics_out, Obs().metrics.ToJson());
    if (!st.ok()) {
      fprintf(stderr, "--metrics-out: %s\n", st.ToString().c_str());
      rc = rc == 0 ? 1 : rc;
    }
  }
  return rc;
}
