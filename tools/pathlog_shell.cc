// pathlog: an interactive PathLog shell.
//
//   $ ./pathlog [--durable <dir>] [--trace-out=F] [--metrics-out=F]
//               [--stats-port=N] [--query-log=F] [file.plg ...]
//
// Loads the given program files, then reads clauses and queries from
// stdin. Input is buffered until a clause-terminating '.' (so clauses
// may span lines). Lines starting with '\' are shell commands — see
// \help.
//
// With --durable, the session is crash-safe: state recovers from
// <dir> on startup and every accepted clause is written ahead to
// <dir>/wal.plgwal before "ok." is printed.
//
// Observability: every session records metrics, a structured trace
// (chrome://tracing format), an always-on flight recorder of recent
// activity, and a per-query structured log. \metrics, \trace,
// \flightrec and \querylog expose them interactively; --metrics-out /
// --trace-out / --query-log write them to files; --stats-port=N (or
// \stats_server) serves them over HTTP on 127.0.0.1 (N=0 picks an
// ephemeral port).

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "pathlog/pathlog.h"
#include "store/fact.h"
#include "store/file_ops.h"

namespace {

constexpr const char* kHelp = R"(PathLog shell commands:
  fact or rule clauses end with '.', e.g.   mary[age->30].
  queries start with '?-':                  ?- X:employee[age->A].
  \help             this message
  \stats            store and engine statistics
  \metrics [file]   session metrics (Prometheus text; with file: JSON)
  \profile on|off   toggle the query/rule profiler; \profile to report
  \trace <file>     write the session trace (chrome://tracing JSON)
  \facts [n]        show the first n facts (default 20)
  \rules            show the loaded rules
  \explain <gen>    provenance of the fact with generation <gen>
  \explain ?- ...   the query's plan: literal order + cardinality
                    estimates (skew-aware planner statistics)
  \lint [file]      lint the loaded program, or a .plg file, with the
                    semantic analyses (PL014-PL019) enabled (:lint works too)
  \dump <file>      write all facts as a loadable program
  \save <file>      save a binary snapshot (facts, rules, signatures)
  \restore <file>   replace the session with a saved snapshot
  \checkpoint       durable sessions: snapshot now and reset the WAL
  \health           durability/degraded-mode health: WAL retries,
                    rotations, degraded state and cause, store size
  \why [--json] <gen>  provenance of a fact (--json: one JSON object)
  \flightrec [dump [file]]  flight-recorder summary; dump writes the
                    ring as Chrome trace JSON (default flight.trace.json)
  \querylog [n]     the last n structured query-log records (JSONL)
  \stats_server [port]  start the HTTP diagnostics server on
                    127.0.0.1 (default/0: ephemeral port); endpoints:
                    /metrics /varz /healthz /statusz /tracez /querylogz
  \quit             exit
)";

/// Session-lifetime observability sinks. One bundle per process: the
/// Database only borrows these, and \restore / --durable replace the
/// Database mid-session.
struct SessionObs {
  pathlog::MetricsRegistry metrics;
  pathlog::Tracer tracer;
  pathlog::Profiler profiler;
  pathlog::FlightRecorder flight;
  /// Created at startup (in-memory only unless --query-log names a
  /// file), so /querylogz and \querylog always have recent records.
  std::unique_ptr<pathlog::QueryLog> query_log;
  /// Serialises the session's Database against the stats server's
  /// health/statusz callbacks, which run on the server thread. Lives
  /// here (not in Shell) so Shell stays move-assignable.
  std::mutex mu;
};

SessionObs& Obs() {
  static SessionObs obs;
  return obs;
}

class Shell {
 public:
  Shell() : db_(MakeOptions()) { AttachObs(); }
  explicit Shell(pathlog::Database db) : db_(std::move(db)) { AttachObs(); }

  static pathlog::DatabaseOptions MakeOptions() {
    pathlog::DatabaseOptions opts;
    opts.engine.trace_provenance = true;
    return opts;
  }

  /// (Re)attaches the session sinks; called after every Database
  /// replacement (\restore, durable open) so metrics/traces span the
  /// whole session. The profiler participates only while \profile on.
  void AttachObs() {
    pathlog::ObsSinks sinks;
    sinks.metrics = &Obs().metrics;
    sinks.tracer = &Obs().tracer;
    sinks.profiler = profile_on_ ? &Obs().profiler : nullptr;
    sinks.flight = &Obs().flight;
    sinks.query_log = Obs().query_log.get();
    db_.SetObsSinks(sinks);
  }

  /// Starts the HTTP diagnostics server (port 0 = ephemeral) and
  /// prints the bound address. The health and statusz callbacks read
  /// the session Database under Obs().mu — the same mutex Handle()
  /// holds — so they are safe on the server thread.
  pathlog::Status StartStatsServer(uint16_t port) {
    if (stats_server_ != nullptr && stats_server_->running()) {
      printf("stats server already listening on 127.0.0.1:%u\n",
             stats_server_->port());
      return pathlog::Status::OK();
    }
    pathlog::StatsServerOptions opts;
    opts.port = port;
    opts.metrics = &Obs().metrics;
    opts.profiler = &Obs().profiler;
    opts.flight = &Obs().flight;
    opts.query_log = Obs().query_log.get();
    opts.health = [this]() {
      std::lock_guard<std::mutex> lock(Obs().mu);
      pathlog::DatabaseHealth h = db_.Health();
      pathlog::ServingHealth out;
      out.ok = !h.degraded;
      out.detail = h.degraded_cause;
      return out;
    };
    opts.statusz_info = [this]() {
      std::lock_guard<std::mutex> lock(Obs().mu);
      pathlog::DatabaseHealth h = db_.Health();
      std::ostringstream os;
      os << "durable:          " << (h.durable ? "yes" : "no") << "\n"
         << "degraded:         " << (h.degraded ? "yes" : "no") << "\n"
         << "store_generation: " << h.facts << "\n"
         << "objects:          " << h.objects << "\n"
         << "store_bytes:      " << h.store_bytes << "\n"
         << "rules:            " << db_.num_rules() << "\n";
      return os.str();
    };
    stats_server_ = std::make_unique<pathlog::StatsServer>(std::move(opts));
    pathlog::Status st = stats_server_->Start();
    if (st.ok()) {
      printf("stats server listening on 127.0.0.1:%u\n",
             stats_server_->port());
      fflush(stdout);
    }
    return st;
  }

  bool LoadFile(const std::string& path) {
    std::lock_guard<std::mutex> lock(Obs().mu);
    std::ifstream in(path);
    if (!in) {
      fprintf(stderr, "cannot open %s\n", path.c_str());
      return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    pathlog::Status st = db_.Load(buffer.str());
    if (!st.ok()) {
      fprintf(stderr, "%s: %s\n", path.c_str(), st.ToString().c_str());
      return false;
    }
    printf("loaded %s (%zu facts, %zu rules so far)\n", path.c_str(),
           db_.store().FactCount(), db_.num_rules());
    return true;
  }

  void Handle(const std::string& input) {
    // One session mutex around every interaction: the stats server's
    // health/statusz callbacks read db_ from the server thread.
    std::lock_guard<std::mutex> lock(Obs().mu);
    if (input.empty()) return;
    if (input[0] == '\\') {
      Command(input);
      return;
    }
    if (input.rfind(":lint", 0) == 0) {
      Command("\\lint" + input.substr(5));
      return;
    }
    if (input.rfind("?-", 0) == 0) {
      pathlog::Result<pathlog::ResultSet> rs = db_.Query(input);
      if (!rs.ok()) {
        printf("%s\n", rs.status().ToString().c_str());
        return;
      }
      printf("%s", rs->ToString(db_.store()).c_str());
      printf("(%zu answer%s)\n", rs->size(), rs->size() == 1 ? "" : "s");
      return;
    }
    pathlog::Status st = db_.Load(input);
    if (!st.ok()) {
      printf("%s\n", st.ToString().c_str());
      return;
    }
    printf("ok.\n");
  }

  void Command(const std::string& input) {
    std::istringstream iss(input);
    std::string cmd;
    iss >> cmd;
    if (cmd == "\\help") {
      printf("%s", kHelp);
    } else if (cmd == "\\stats") {
      if (db_.num_rules() > 0) {
        pathlog::Status st = db_.Materialize();
        if (!st.ok()) {
          printf("%s\n", st.ToString().c_str());
          return;
        }
      }
      pathlog::ObjectStore::Stats s = db_.store().ComputeStats();
      printf("objects: %zu\nisa facts: %zu\nscalar facts: %zu\n"
             "set facts: %zu\nrules: %zu\n",
             s.objects, s.isa_facts, s.scalar_facts, s.set_facts,
             db_.num_rules());
      const pathlog::EngineStats& es = db_.engine_stats();
      printf("last run: %llu iterations, %llu derivations, "
             "%llu virtual objects, %d strata, %.3f ms\n",
             static_cast<unsigned long long>(es.iterations),
             static_cast<unsigned long long>(es.derivations),
             static_cast<unsigned long long>(es.skolems_created),
             es.num_strata, es.elapsed_ms);
      printf("          %llu rule evaluations, %llu delta passes, "
             "%llu duplicates suppressed\n",
             static_cast<unsigned long long>(es.rule_evaluations),
             static_cast<unsigned long long>(es.delta_passes),
             static_cast<unsigned long long>(es.duplicates_suppressed));
      if (!es.stratum_iterations.empty()) {
        printf("iterations by stratum:");
        for (size_t si = 0; si < es.stratum_iterations.size(); ++si) {
          printf(" [%zu]=%llu", si,
                 static_cast<unsigned long long>(es.stratum_iterations[si]));
        }
        printf("\n");
      }
      if (es.limit_stratum >= 0) {
        printf("limit hit in stratum %d%s%s\n", es.limit_stratum,
               es.limit_rule.empty() ? "" : " while evaluating ",
               es.limit_rule.c_str());
      }
    } else if (cmd == "\\metrics") {
      std::string path;
      if (iss >> path) {
        pathlog::Status st = pathlog::WriteFileAtomic(
            pathlog::DefaultFileOps(), path, Obs().metrics.ToJson());
        if (st.ok()) {
          printf("wrote metrics JSON to %s\n", path.c_str());
        } else {
          printf("%s\n", st.ToString().c_str());
        }
      } else {
        printf("%s", Obs().metrics.ToPrometheusText().c_str());
        // Interpolated quantiles as comment lines: the parser ignores
        // comments, so the exposition above still round-trips.
        for (const auto& [name, h] : Obs().metrics.HistogramEntries()) {
          if (h->total_count() == 0) continue;
          printf("# quantiles %s p50=%.3f p95=%.3f p99=%.3f\n", name.c_str(),
                 h->Quantile(0.50), h->Quantile(0.95), h->Quantile(0.99));
        }
      }
    } else if (cmd == "\\profile") {
      std::string arg;
      if (iss >> arg) {
        if (arg == "on") {
          profile_on_ = true;
          AttachObs();
          printf("profiling on.\n");
        } else if (arg == "off") {
          profile_on_ = false;
          AttachObs();
          printf("profiling off.\n");
        } else {
          printf("usage: \\profile [on|off]\n");
        }
      } else {
        printf("%s", db_.ProfileReport().c_str());
      }
    } else if (cmd == "\\trace") {
      std::string path;
      if (iss >> path) {
        pathlog::Status st = Obs().tracer.WriteTo(path);
        if (st.ok()) {
          printf("wrote trace (%zu events) to %s\n",
                 Obs().tracer.event_count(), path.c_str());
        } else {
          printf("%s\n", st.ToString().c_str());
        }
      } else {
        printf("usage: \\trace <file>\n");
      }
    } else if (cmd == "\\facts") {
      size_t n = 20;
      iss >> n;
      const uint64_t end = db_.store().generation();
      for (uint64_t g = 0; g < end && g < n; ++g) {
        printf("%4llu  %s.\n", static_cast<unsigned long long>(g),
               pathlog::FactToString(db_.store().FactAt(g),
                                     db_.store()).c_str());
      }
      if (end > n) {
        printf("... (%llu more)\n", static_cast<unsigned long long>(end - n));
      }
    } else if (cmd == "\\rules") {
      for (size_t i = 0; i < db_.rules().size(); ++i) {
        printf("  [%zu] %s\n", i, pathlog::ToString(db_.rules()[i]).c_str());
      }
      if (db_.rules().empty()) printf("  (no rules loaded)\n");
    } else if (cmd == "\\explain") {
      std::string rest;
      std::getline(iss, rest);
      const size_t start = rest.find_first_not_of(" \t");
      rest = start == std::string::npos ? "" : rest.substr(start);
      if (rest.rfind("?-", 0) == 0) {
        // A query: show the planner's chosen literal order with its
        // cardinality estimates (skew-aware statistics by default)
        // instead of running it.
        pathlog::Result<std::string> plan = db_.ExplainQuery(rest);
        if (plan.ok()) {
          printf("%s", plan->c_str());
        } else {
          printf("%s\n", plan.status().ToString().c_str());
        }
      } else if (!rest.empty() &&
                 rest.find_first_not_of("0123456789") == std::string::npos) {
        printf("%s\n", db_.ExplainFact(std::stoull(rest)).c_str());
      } else {
        printf("usage: \\explain <generation> | \\explain ?- <query>\n");
      }
    } else if (cmd == "\\dump") {
      std::string path;
      if (iss >> path) {
        std::ofstream out(path);
        out << pathlog::StoreToProgramText(db_.store());
        printf("wrote %zu facts to %s\n", db_.store().FactCount(),
               path.c_str());
      } else {
        printf("usage: \\dump <file>\n");
      }
    } else if (cmd == "\\save") {
      std::string path;
      if (iss >> path) {
        pathlog::Status st = db_.SaveSnapshotFile(path);
        printf("%s\n", st.ok() ? "saved." : st.ToString().c_str());
      } else {
        printf("usage: \\save <file>\n");
      }
    } else if (cmd == "\\restore") {
      std::string path;
      if (iss >> path) {
        pathlog::Result<pathlog::Database> restored =
            pathlog::Database::LoadSnapshotFile(path, MakeOptions());
        if (!restored.ok()) {
          printf("%s\n", restored.status().ToString().c_str());
        } else {
          db_ = std::move(*restored);
          AttachObs();
          printf("restored %zu facts, %zu rules.\n",
                 db_.store().FactCount(), db_.num_rules());
        }
      } else {
        printf("usage: \\restore <file>\n");
      }
    } else if (cmd == "\\lint") {
      std::string path;
      if (iss >> path) {
        std::ifstream in(path);
        if (!in) {
          printf("cannot open %s\n", path.c_str());
          return;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        // File lints get the semantic analyses too, matching
        // Database::Lint() for the session form.
        pathlog::LintOptions lint_options;
        lint_options.analyze = true;
        pathlog::LintReport report =
            pathlog::ProgramLinter(std::move(lint_options))
                .LintSource(buffer.str());
        printf("%s", report.ToString(path).c_str());
        if (report.empty()) {
          printf("%s: clean\n", path.c_str());
        } else {
          printf("%s: %zu error(s), %zu warning(s)\n", path.c_str(),
                 report.errors(), report.warnings());
        }
      } else {
        pathlog::LintReport report = db_.Lint();
        printf("%s", report.ToString("<session>").c_str());
        if (report.empty()) {
          printf("lint: clean (%zu rules, %zu triggers)\n",
                 db_.num_rules(), db_.num_triggers());
        } else {
          printf("lint: %zu error(s), %zu warning(s)\n", report.errors(),
                 report.warnings());
        }
      }
    } else if (cmd == "\\checkpoint") {
      pathlog::Status st = db_.Checkpoint();
      printf("%s\n", st.ok() ? "checkpointed." : st.ToString().c_str());
    } else if (cmd == "\\health") {
      pathlog::DatabaseHealth h = db_.Health();
      printf("durable:          %s\n", h.durable ? "yes" : "no");
      printf("mode:             %s\n",
             h.degraded ? "DEGRADED (read-only)" : "read-write");
      if (h.degraded) {
        printf("degraded cause:   %s\n", h.degraded_cause.c_str());
      }
      printf("degraded entries: %llu\n",
             static_cast<unsigned long long>(h.degraded_entries));
      printf("wal retries:      %llu\n",
             static_cast<unsigned long long>(h.wal_retries));
      printf("wal rotations:    %llu\n",
             static_cast<unsigned long long>(h.wal_rotations));
      printf("wal records:      %llu\n",
             static_cast<unsigned long long>(h.wal_records));
      printf("wal bytes:        %llu\n",
             static_cast<unsigned long long>(h.wal_bytes));
      printf("store bytes:      ~%llu\n",
             static_cast<unsigned long long>(h.store_bytes));
      printf("objects:          %llu\n",
             static_cast<unsigned long long>(h.objects));
      printf("facts:            %llu\n",
             static_cast<unsigned long long>(h.facts));
    } else if (cmd == "\\why") {
      std::string arg;
      bool json = false;
      if (iss >> arg && arg == "--json") {
        json = true;
        if (!(iss >> arg)) arg.clear();
      }
      if (arg.empty() ||
          arg.find_first_not_of("0123456789") != std::string::npos) {
        printf("usage: \\why [--json] <generation>\n");
      } else if (json) {
        pathlog::Result<std::string> out =
            db_.ExplainFactJson(std::stoull(arg));
        if (out.ok()) {
          printf("%s\n", out->c_str());
        } else {
          printf("%s\n", out.status().ToString().c_str());
        }
      } else {
        printf("%s\n", db_.ExplainFact(std::stoull(arg)).c_str());
      }
    } else if (cmd == "\\flightrec") {
      std::string arg;
      if (iss >> arg) {
        if (arg == "dump") {
          std::string path = "flight.trace.json";
          iss >> path;
          pathlog::Status st = Obs().flight.WriteTo(path);
          if (st.ok()) {
            printf("wrote flight-recorder dump to %s\n", path.c_str());
          } else {
            printf("%s\n", st.ToString().c_str());
          }
        } else {
          printf("usage: \\flightrec [dump [file]]\n");
        }
      } else {
        const auto events = Obs().flight.Snapshot();
        printf("flight recorder: %llu events recorded, %zu in ring "
               "(capacity %zu)\n",
               static_cast<unsigned long long>(Obs().flight.recorded()),
               events.size(), Obs().flight.capacity());
        const size_t show = events.size() > 10 ? 10 : events.size();
        for (size_t i = events.size() - show; i < events.size(); ++i) {
          const pathlog::FlightEvent& e = events[i];
          printf("  [%llu] %s (%s) +%llums dur=%lluus\n",
                 static_cast<unsigned long long>(e.seq), e.name.c_str(),
                 e.category.c_str(),
                 static_cast<unsigned long long>(e.ts_us / 1000),
                 static_cast<unsigned long long>(e.dur_us));
        }
      }
    } else if (cmd == "\\querylog") {
      if (Obs().query_log == nullptr) {
        printf("query log not enabled\n");
      } else {
        size_t n = 10;
        iss >> n;
        for (const std::string& line : Obs().query_log->Recent(n)) {
          printf("%s\n", line.c_str());
        }
        printf("(%llu records this session%s%s)\n",
               static_cast<unsigned long long>(
                   Obs().query_log->records_written()),
               Obs().query_log->path().empty() ? "" : ", logging to ",
               Obs().query_log->path().c_str());
      }
    } else if (cmd == "\\stats_server") {
      uint16_t port = 0;
      unsigned parsed = 0;
      if (iss >> parsed) port = static_cast<uint16_t>(parsed);
      pathlog::Status st = StartStatsServer(port);
      if (!st.ok()) printf("%s\n", st.ToString().c_str());
    } else if (cmd == "\\quit" || cmd == "\\q") {
      done_ = true;
    } else {
      printf("unknown command %s — try \\help\n", cmd.c_str());
    }
  }

  int Run() {
    std::string pending;
    std::string line;
    printf("PathLog shell — \\help for help, \\quit to exit.\n");
    while (!done_) {
      printf("%s", pending.empty() ? "pathlog> " : "     ...> ");
      fflush(stdout);
      if (!std::getline(std::cin, line)) break;
      // Trim trailing whitespace.
      while (!line.empty() && isspace(static_cast<unsigned char>(line.back()))) {
        line.pop_back();
      }
      if (pending.empty() && !line.empty() &&
          (line[0] == '\\' || line.rfind(":lint", 0) == 0)) {
        Handle(line);
        continue;
      }
      pending += line;
      pending += "\n";
      // A clause is complete when the buffer ends with a terminator dot.
      std::string trimmed = pending;
      while (!trimmed.empty() &&
             isspace(static_cast<unsigned char>(trimmed.back()))) {
        trimmed.pop_back();
      }
      if (!trimmed.empty() && trimmed.back() == '.') {
        Handle(trimmed);
        pending.clear();
      }
    }
    return 0;
  }

 private:
  pathlog::Database db_;
  bool done_ = false;
  bool profile_on_ = false;
  std::unique_ptr<pathlog::StatsServer> stats_server_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string durable_dir;
  std::string trace_out;
  std::string metrics_out;
  std::string query_log_path;
  int stats_port = -1;  // -1 = no server
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--durable") {
      if (i + 1 >= argc) {
        fprintf(stderr, "--durable requires a directory argument\n");
        return 1;
      }
      durable_dir = argv[++i];
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(sizeof("--trace-out=") - 1);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(sizeof("--metrics-out=") - 1);
    } else if (arg.rfind("--query-log=", 0) == 0) {
      query_log_path = arg.substr(sizeof("--query-log=") - 1);
    } else if (arg.rfind("--stats-port=", 0) == 0) {
      stats_port = atoi(arg.c_str() + sizeof("--stats-port=") - 1);
      if (stats_port < 0 || stats_port > 65535) {
        fprintf(stderr, "--stats-port must be 0..65535\n");
        return 1;
      }
    } else {
      files.push_back(std::move(arg));
    }
  }

  // The query log exists for every session (the stats server and
  // \querylog read its in-memory ring); only --query-log makes it
  // write JSONL to disk.
  {
    pathlog::QueryLogOptions qopts;
    qopts.path = query_log_path;
    Obs().query_log = std::make_unique<pathlog::QueryLog>(std::move(qopts));
  }

  Shell shell;
  if (!durable_dir.empty()) {
    pathlog::Result<pathlog::Database> db =
        pathlog::Database::Open(durable_dir, Shell::MakeOptions());
    if (!db.ok()) {
      fprintf(stderr, "%s: %s\n", durable_dir.c_str(),
              db.status().ToString().c_str());
      return 1;
    }
    printf("durable session at %s (%zu facts, %zu rules recovered)\n",
           durable_dir.c_str(), db->store().FactCount(), db->num_rules());
    shell = Shell(std::move(*db));
  }
  for (const std::string& path : files) {
    if (!shell.LoadFile(path)) return 1;
  }
  // Start after the final `shell` assignment above: the server's
  // callbacks capture the Shell pointer, which must not move again.
  if (stats_port >= 0) {
    pathlog::Status st =
        shell.StartStatsServer(static_cast<uint16_t>(stats_port));
    if (!st.ok()) {
      fprintf(stderr, "--stats-port: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  int rc = shell.Run();
  if (!trace_out.empty()) {
    pathlog::Status st = Obs().tracer.WriteTo(trace_out);
    if (!st.ok()) {
      fprintf(stderr, "--trace-out: %s\n", st.ToString().c_str());
      rc = rc == 0 ? 1 : rc;
    }
  }
  if (!metrics_out.empty()) {
    pathlog::Status st = pathlog::WriteFileAtomic(
        pathlog::DefaultFileOps(), metrics_out, Obs().metrics.ToJson());
    if (!st.ok()) {
      fprintf(stderr, "--metrics-out: %s\n", st.ToString().c_str());
      rc = rc == 0 ? 1 : rc;
    }
  }
  return rc;
}
