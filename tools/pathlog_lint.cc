// pathlog_lint: command-line front end for the PathLog linter.
//
//   pathlog_lint [--json] [--analyze] [--skolemize] [--errors-only] FILE...
//
// Lints each file independently and prints the diagnostics, human
// readable by default ("file:line:col: severity[PLxxx]: message") or
// one JSON object per file with --json.
//
// --analyze additionally runs the semantic dataflow analyses
// (PL014-PL019): sort inference, contradiction detection, fixpoint
// reachability, termination of object invention, and binding-mode
// (adornment) analysis. The extra diagnostics ride in the same report,
// so --json output needs no new shape.
//
// Exit status: 0 when every file is clean, 1 when any file produced a
// diagnostic (warning or error), 2 on usage or I/O errors.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

int Usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--json] [--analyze] [--skolemize] [--errors-only] FILE...\n"
      << "Static analysis for PathLog programs.\n"
      << "  --json         one JSON report object per file, one per line\n"
      << "  --analyze      run the semantic dataflow analyses (PL014-PL019)\n"
      << "  --skolemize    assume skolemizing head-value mode (more\n"
      << "                 invention sites)\n"
      << "  --errors-only  suppress warning-severity diagnostics\n"
      << "exit status: 0 clean, 1 diagnostics found, 2 usage/IO error\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  pathlog::LintOptions options;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--analyze") {
      options.analyze = true;
    } else if (arg == "--skolemize") {
      options.head_value_mode = pathlog::HeadValueMode::kSkolemize;
    } else if (arg == "--errors-only") {
      options.errors_only = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << argv[0] << ": unknown option: " << arg << "\n";
      return Usage(argv[0]);
    } else {
      files.push_back(std::move(arg));
    }
  }
  if (files.empty()) return Usage(argv[0]);

  pathlog::ProgramLinter linter(options);
  bool any_findings = false;
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << argv[0] << ": cannot read " << file << "\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    pathlog::LintReport report = linter.LintSource(text.str());
    if (!report.empty()) any_findings = true;
    if (json) {
      std::cout << report.ToJson(file) << "\n";
    } else {
      std::cout << report.ToString(file);
      if (report.empty()) {
        std::cout << file << ": clean\n";
      } else {
        std::cout << file << ": " << report.errors() << " error(s), "
                  << report.warnings() << " warning(s)\n";
      }
    }
  }
  return any_findings ? 1 : 0;
}
