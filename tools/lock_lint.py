#!/usr/bin/env python3
"""Lock-discipline lint for PathLog headers.

The clang thread-safety analysis (base/thread_annotations.h) only
checks what is annotated — a mutex member nobody wrote GUARDED_BY
against is invisible to it, and this container builds with GCC, where
the annotations compile to nothing. This lint closes both gaps
structurally: every synchronisation-relevant member declared in a
header under src/ must carry its part of the contract.

Rules, applied to member declarations in src/**/*.h:

  1. A mutex-like member (std::mutex, std::shared_mutex,
     std::condition_variable, pathlog::Mutex / SharedMutex, or a
     unique_ptr of one) must have at least one sibling member in the
     same class annotated GUARDED_BY(<that member>) — a lock nothing
     is guarded by is either dead weight or an unannotated contract.
  2. An atomic member (std::atomic<...> or MovableAtomic<...>) must be
     covered by a `// lock-free:` contract comment somewhere in the
     same class body — atomics are exactly the state that bypasses
     locks, so the happens-before story must be written down.
  3. Raw std::mutex / std::shared_mutex / std::condition_variable are
     banned outright in src/ headers: use the annotated wrappers from
     base/mutex.h so clang can follow the lock.

Escape hatch: tools/lock_lint_allowlist.txt holds `file:member` lines
for deliberate exceptions, each of which should carry a comment
explaining why. Exit status 0 = clean, 1 = violations.
"""

import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
ALLOWLIST_PATH = os.path.join(ROOT, "tools", "lock_lint_allowlist.txt")

MUTEX_TYPES = re.compile(
    r"^\s*(?:mutable\s+)?"
    r"(?:std::mutex|std::shared_mutex|std::condition_variable|"
    r"(?:pathlog::)?Mutex|(?:pathlog::)?SharedMutex|"
    r"std::unique_ptr<\s*(?:pathlog::)?(?:Shared)?Mutex\s*>)\s+"
    r"(\w+)\s*(?:=[^;]*)?;"
)
RAW_MUTEX_TYPES = re.compile(
    r"^\s*(?:mutable\s+)?"
    r"(std::mutex|std::shared_mutex|std::condition_variable)\s+\w+"
)
ATOMIC_TYPES = re.compile(
    r"^\s*(?:mutable\s+)?"
    r"(?:std::atomic<[^;]+?>|MovableAtomic<[^;]+?>)\s+"
    r"(\w+)\s*(?:\{[^}]*\}|=[^;]*)?;"
)
LOCK_FREE_CONTRACT = re.compile(r"//\s*lock-free:")


def load_allowlist():
    allow = set()
    if not os.path.exists(ALLOWLIST_PATH):
        return allow
    with open(ALLOWLIST_PATH, encoding="utf-8") as f:
        for line in f:
            line = line.split("#", 1)[0].strip()
            if line:
                allow.add(line)
    return allow


def class_bodies(text):
    """Yields (class_text) for each top-level class/struct body.

    A lexical approximation: from each `class`/`struct` keyword to its
    matching closing brace. Good enough for style-conforming headers.
    """
    for m in re.finditer(r"\b(?:class|struct)\b[^;{]*\{", text):
        depth = 0
        start = m.end() - 1
        for i in range(start, len(text)):
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
                if depth == 0:
                    yield text[m.start():i + 1]
                    break


def lint_file(path, relpath, allow):
    with open(path, encoding="utf-8") as f:
        text = f.read()
    errors = []
    for line_no, line in enumerate(text.splitlines(), 1):
        raw = RAW_MUTEX_TYPES.match(line)
        if raw and f"{relpath}:raw" not in allow:
            errors.append(
                f"{relpath}:{line_no}: raw {raw.group(1)} member; use the "
                f"annotated wrappers in base/mutex.h (or allowlist "
                f"'{relpath}:raw' with a reason)"
            )
    for body in class_bodies(text):
        has_contract = bool(LOCK_FREE_CONTRACT.search(body))
        for m in MUTEX_TYPES.finditer(body):
            name = m.group(1)
            key = f"{relpath}:{name}"
            if key in allow:
                continue
            guarded = re.search(r"GUARDED_BY\(\s*" + re.escape(name) + r"\s*\)",
                                body)
            if not guarded:
                errors.append(
                    f"{relpath}: mutex member '{name}' has no "
                    f"GUARDED_BY({name}) peer in its class; annotate what it "
                    f"protects (or allowlist '{key}' with a reason)"
                )
        for m in ATOMIC_TYPES.finditer(body):
            name = m.group(1)
            key = f"{relpath}:{name}"
            if key in allow:
                continue
            if not has_contract:
                errors.append(
                    f"{relpath}: atomic member '{name}' in a class with no "
                    f"'// lock-free:' contract comment; document the "
                    f"happens-before story (or allowlist '{key}')"
                )
    return errors


def main():
    allow = load_allowlist()
    errors = []
    for dirpath, _, filenames in os.walk(SRC):
        for fn in sorted(filenames):
            if not fn.endswith(".h"):
                continue
            path = os.path.join(dirpath, fn)
            relpath = os.path.relpath(path, ROOT)
            errors.extend(lint_file(path, relpath, allow))
    if errors:
        print(f"lock_lint: {len(errors)} violation(s):", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print("lock_lint: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
